//! MissForest imputation (Stekhoven & Bühlmann, "MissF" in the paper).
//!
//! Iterative random-forest imputation: initialize with column means, then —
//! visiting columns in increasing missing-rate order — train a forest to
//! predict each incomplete column from the others and replace its missing
//! entries, until the update stops shrinking or the iteration cap is hit.
//! The paper's setting uses 100 trees; the default here is configurable
//! because the bench harness scales tree counts with dataset size.

use crate::traits::Imputer;
use crate::tree::{RandomForest, TreeConfig};
use scis_data::Dataset;
use scis_tensor::stats::nan_mean;
use scis_tensor::{Matrix, Rng64};

/// MissForest imputer.
#[derive(Debug, Clone)]
pub struct MissForestImputer {
    /// Trees per forest (paper: 100).
    pub n_trees: usize,
    /// Maximum refinement iterations.
    pub max_iter: usize,
    /// Stop when the mean squared change of imputed cells falls below this.
    pub tol: f64,
    /// Tree growth parameters.
    pub tree_config: TreeConfig,
}

impl Default for MissForestImputer {
    fn default() -> Self {
        Self {
            n_trees: 100,
            max_iter: 5,
            tol: 1e-5,
            tree_config: TreeConfig::default(),
        }
    }
}

impl MissForestImputer {
    /// A small configuration for tests and tiny datasets.
    pub fn small() -> Self {
        Self {
            n_trees: 10,
            max_iter: 3,
            ..Default::default()
        }
    }
}

impl Imputer for MissForestImputer {
    fn name(&self) -> &'static str {
        "MissF"
    }

    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        let (n, d) = ds.values.shape();
        let means: Vec<f64> = (0..d)
            .map(|j| nan_mean(&ds.values.col(j)).unwrap_or(0.5))
            .collect();
        let mut x = Matrix::from_fn(n, d, |i, j| {
            let v = ds.values[(i, j)];
            if v.is_nan() {
                means[j]
            } else {
                v
            }
        });

        // visit columns in increasing missing-count order (MissForest's rule)
        let mut cols: Vec<usize> = (0..d)
            .filter(|&j| ds.mask.col_observed_count(j) < n)
            .collect();
        cols.sort_by_key(|&j| n - ds.mask.col_observed_count(j));

        for _iter in 0..self.max_iter {
            let mut change = 0.0;
            let mut changed_cells = 0usize;
            for &j in &cols {
                let obs_rows: Vec<usize> = (0..n).filter(|&i| ds.mask.get(i, j)).collect();
                let mis_rows: Vec<usize> = (0..n).filter(|&i| !ds.mask.get(i, j)).collect();
                if obs_rows.len() < 4 || mis_rows.is_empty() {
                    continue;
                }
                let other: Vec<usize> = (0..d).filter(|&c| c != j).collect();
                let x_obs = x.select_cols(&other).select_rows(&obs_rows);
                let y_obs: Vec<f64> = obs_rows.iter().map(|&i| ds.values[(i, j)]).collect();
                let forest =
                    RandomForest::fit(&x_obs, &y_obs, self.n_trees, &self.tree_config, rng);
                let x_mis = x.select_cols(&other).select_rows(&mis_rows);
                let preds = forest.predict(&x_mis);
                for (&i, p) in mis_rows.iter().zip(preds) {
                    let old = x[(i, j)];
                    change += (p - old) * (p - old);
                    changed_cells += 1;
                    x[(i, j)] = p;
                }
            }
            if changed_cells == 0 || change / changed_cells as f64 <= self.tol {
                break;
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scis_data::metrics::rmse_vs_ground_truth;
    use scis_data::missing::inject_mcar;

    fn nonlinear_table(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 3);
        for i in 0..n {
            let x = rng.uniform();
            m[(i, 0)] = x;
            // nonlinear but deterministic links — a forest should nail these
            m[(i, 1)] = if x > 0.5 { 0.9 } else { 0.1 };
            // monotone link so every column determines the others
            m[(i, 2)] = (x * std::f64::consts::FRAC_PI_2).sin();
        }
        m
    }

    /// Hide exactly one random cell in `frac` of the rows (recoverable
    /// missingness: the rest of the row always pins down the latent x).
    fn one_cell_per_row_missing(complete: &Matrix, frac: f64, rng: &mut Rng64) -> Dataset {
        let mut ds = Dataset::from_values(complete.clone());
        for i in 0..complete.rows() {
            if rng.bernoulli(frac) {
                let j = rng.gen_range(complete.cols());
                ds.values[(i, j)] = f64::NAN;
                ds.mask.set(i, j, false);
            }
        }
        ds
    }

    #[test]
    fn recovers_nonlinear_relationships() {
        let complete = nonlinear_table(400, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let ds = one_cell_per_row_missing(&complete, 0.4, &mut rng);
        let out = MissForestImputer::small().impute(&ds, &mut rng);
        let err = rmse_vs_ground_truth(&ds, &complete, &out);
        assert!(err < 0.08, "rmse {}", err);
    }

    #[test]
    fn beats_mean_and_linear_mice_on_step_data() {
        let complete = nonlinear_table(400, 3);
        let mut rng = Rng64::seed_from_u64(4);
        let ds = inject_mcar(&complete, 0.25, &mut rng);
        let mf = MissForestImputer::small().impute(&ds, &mut rng);
        let mean = crate::mean::MeanImputer.impute(&ds, &mut rng);
        let e_mf = rmse_vs_ground_truth(&ds, &complete, &mf);
        let e_mean = rmse_vs_ground_truth(&ds, &complete, &mean);
        assert!(
            e_mf < e_mean * 0.5,
            "missforest {} vs mean {}",
            e_mf,
            e_mean
        );
    }

    #[test]
    fn observed_cells_pass_through() {
        let complete = nonlinear_table(100, 5);
        let mut rng = Rng64::seed_from_u64(6);
        let ds = inject_mcar(&complete, 0.3, &mut rng);
        let out = MissForestImputer::small().impute(&ds, &mut rng);
        for (i, j, v) in ds.observed_cells() {
            assert_eq!(out[(i, j)], v);
        }
        assert!(!out.has_nan());
    }

    #[test]
    fn complete_data_is_untouched() {
        let complete = nonlinear_table(50, 7);
        let ds = Dataset::from_values(complete.clone());
        let mut rng = Rng64::seed_from_u64(8);
        let out = MissForestImputer::small().impute(&ds, &mut rng);
        assert_eq!(out, complete);
    }
}
