//! Execution policy: who decides how many worker threads a kernel may use.
//!
//! Every compute layer in the workspace (tensor kernels, NN forward/backward,
//! Sinkhorn sweeps, the SSE Monte-Carlo fan-out) takes an [`ExecPolicy`]
//! instead of a raw thread count. The resolution order is
//!
//! 1. an **explicit policy** ([`ExecPolicy::Serial`] or
//!    [`ExecPolicy::Threads`]) always wins;
//! 2. [`ExecPolicy::Auto`] consults the **`SCIS_THREADS`** environment
//!    variable (a positive integer; `1` forces serial);
//! 3. if `SCIS_THREADS` is unset or unparsable, Auto falls back to
//!    [`std::thread::available_parallelism`].
//!
//! # Determinism contract
//!
//! Parallelism never changes results. Every parallel path in the workspace
//! partitions *output rows* across workers — each row is produced by exactly
//! one worker from read-only inputs, with the same per-row arithmetic as the
//! serial loop — and global reductions are computed as per-row partials
//! summed in ascending row order. Consequently results are bit-identical for
//! any thread count, and seeded experiments stay reproducible regardless of
//! the machine or `SCIS_THREADS` setting.

/// How a kernel or pipeline stage may use worker threads.
///
/// The default is [`ExecPolicy::Auto`], which defers to the `SCIS_THREADS`
/// environment variable and then the machine's available parallelism. All
/// variants produce bit-identical results; the policy only trades wall-clock
/// time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecPolicy {
    /// Single-threaded: never spawn workers.
    Serial,
    /// Exactly this many worker threads (clamped to at least 1).
    Threads(usize),
    /// Resolve from `SCIS_THREADS`, else `available_parallelism`.
    #[default]
    Auto,
}

impl ExecPolicy {
    /// A policy with exactly `n` worker threads (`n` is clamped to ≥ 1).
    pub fn threads(n: usize) -> Self {
        ExecPolicy::Threads(n.max(1))
    }

    /// Resolves the policy to a concrete worker count (always ≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threads(n) => n.max(1),
            ExecPolicy::Auto => auto_threads(),
        }
    }

    /// Worker count clamped to the number of independent work items
    /// (spawning more threads than rows is pure overhead).
    pub fn workers(self, items: usize) -> usize {
        self.resolve().min(items.max(1))
    }

    /// True when the policy resolves to a single worker.
    pub fn is_serial(self) -> bool {
        self.resolve() <= 1
    }

    /// Parses the CLI/bundle spelling of a policy: `"serial"`, `"auto"`, or
    /// a positive thread count (`"4"`). `"0"` means serial, matching the
    /// CLI's historical `--threads 0` convention.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "serial" => Ok(ExecPolicy::Serial),
            "auto" => Ok(ExecPolicy::Auto),
            n => match n.parse::<usize>() {
                Ok(0) => Ok(ExecPolicy::Serial),
                Ok(n) => Ok(ExecPolicy::Threads(n)),
                Err(_) => Err(format!(
                    "bad exec policy {:?} (expected serial, auto, or a thread count)",
                    s
                )),
            },
        }
    }
}

/// Worker count for [`ExecPolicy::Auto`]: the `SCIS_THREADS` environment
/// variable if it is a **strictly valid** positive integer, otherwise
/// [`std::thread::available_parallelism`] (and `1` as the last resort).
///
/// "Strictly valid" means ASCII digits only with a nonzero value. Degenerate
/// spellings — `SCIS_THREADS=0`, an empty string, whitespace, a leading `+`,
/// hex, negatives, or values that overflow `usize` — all resolve to the
/// hardware fallback instead of poisoning worker partitioning with a
/// zero-or-garbage count. The result is always ≥ 1.
pub fn auto_threads() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("SCIS_THREADS") {
        Ok(raw) => {
            let s = raw.trim();
            // digits-only guard: `usize::parse` accepts a leading '+',
            // which we reject so the accepted grammar stays canonical
            if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
                return fallback();
            }
            match s.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => fallback(), // 0 or overflow
            }
        }
        Err(_) => fallback(),
    }
}

/// Runs `f(row_index, row)` for every `row_len`-sized row of `data`,
/// partitioning rows into contiguous blocks across `threads` scoped workers.
///
/// Each row is visited by exactly one worker with exactly the arguments the
/// serial loop would pass, so any per-row computation is bit-identical to
/// its serial counterpart. With `threads <= 1` no threads are spawned.
///
/// # Panics
/// Panics if `row_len` is zero or does not divide `data.len()`.
pub fn for_each_row<F>(data: &mut [f64], row_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(row_len > 0, "for_each_row: row_len must be positive");
    assert_eq!(data.len() % row_len, 0, "for_each_row: ragged rows");
    let rows = data.len() / row_len;
    let threads = threads.max(1).min(rows.max(1));
    if threads == 1 {
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            f(i, row);
        }
        return;
    }
    let chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (block_idx, block) in data.chunks_mut(chunk * row_len).enumerate() {
            let row0 = block_idx * chunk;
            let f = &f;
            scope.spawn(move || {
                for (local_i, row) in block.chunks_mut(row_len).enumerate() {
                    f(row0 + local_i, row);
                }
            });
        }
    });
}

/// Runs `f(first_row, span)` over contiguous **spans of rows** of `data`,
/// one span per worker. This is the partitioner the blocked GEMM wrappers
/// use: a span-level kernel can tile across the rows it owns, and because
/// every output element's accumulation chain is confined to its own row,
/// *any* partition of rows into spans is bit-identical to the single-span
/// (serial) call.
///
/// With `threads <= 1` the closure is invoked once as `f(0, data)` with no
/// threads spawned.
///
/// # Panics
/// Panics if `row_len` is zero or does not divide `data.len()`.
pub fn for_row_spans<F>(data: &mut [f64], row_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(row_len > 0, "for_row_spans: row_len must be positive");
    assert_eq!(data.len() % row_len, 0, "for_row_spans: ragged rows");
    let rows = data.len() / row_len;
    let threads = threads.max(1).min(rows.max(1));
    if threads == 1 {
        f(0, data);
        return;
    }
    let chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (block_idx, block) in data.chunks_mut(chunk * row_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(block_idx * chunk, block));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_constructor_clamps_to_one() {
        assert_eq!(ExecPolicy::threads(0), ExecPolicy::Threads(1));
        assert_eq!(ExecPolicy::threads(6), ExecPolicy::Threads(6));
    }

    #[test]
    fn serial_resolves_to_one_worker() {
        assert_eq!(ExecPolicy::Serial.resolve(), 1);
        assert!(ExecPolicy::Serial.is_serial());
        assert_eq!(ExecPolicy::Threads(8).resolve(), 8);
        assert!(!ExecPolicy::Threads(8).is_serial());
    }

    #[test]
    fn auto_resolves_positive() {
        assert!(ExecPolicy::Auto.resolve() >= 1);
    }

    #[test]
    fn workers_clamps_to_item_count() {
        assert_eq!(ExecPolicy::Threads(16).workers(3), 3);
        assert_eq!(ExecPolicy::Threads(2).workers(100), 2);
        assert_eq!(ExecPolicy::Threads(4).workers(0), 1);
    }

    #[test]
    fn for_each_row_matches_serial_for_any_thread_count() {
        let rows = 37;
        let cols = 5;
        let fill = |i: usize, row: &mut [f64]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 31 + j) as f64 * 0.25 - 3.0;
            }
        };
        let mut want = vec![0.0; rows * cols];
        for_each_row(&mut want, cols, 1, fill);
        for threads in [2, 3, 7, 64] {
            let mut got = vec![0.0; rows * cols];
            for_each_row(&mut got, cols, threads, fill);
            assert_eq!(got, want, "threads = {}", threads);
        }
    }

    #[test]
    fn for_each_row_handles_empty_input() {
        let mut data: Vec<f64> = vec![];
        for_each_row(&mut data, 4, 8, |_, _| panic!("no rows to visit"));
    }

    #[test]
    fn for_row_spans_matches_single_span_for_any_thread_count() {
        let rows = 41;
        let cols = 3;
        let fill = |first_row: usize, span: &mut [f64]| {
            for (local, row) in span.chunks_mut(cols).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = ((first_row + local) * 17 + j) as f64 * 0.5 - 2.0;
                }
            }
        };
        let mut want = vec![0.0; rows * cols];
        for_row_spans(&mut want, cols, 1, fill);
        for threads in [2, 3, 5, 40, 200] {
            let mut got = vec![0.0; rows * cols];
            for_row_spans(&mut got, cols, threads, fill);
            assert_eq!(got, want, "threads = {}", threads);
        }
    }

    #[test]
    fn for_row_spans_handles_empty_input() {
        let mut data: Vec<f64> = vec![];
        for_row_spans(&mut data, 4, 8, |first, span| {
            assert_eq!((first, span.len()), (0, 0));
        });
    }

    // All SCIS_THREADS manipulation lives in this one test: the variable is
    // process-global, so spreading set/remove across tests would race under
    // the parallel test runner.
    #[test]
    fn auto_threads_rejects_degenerate_scis_threads() {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for (raw, want) in [
            ("3", Some(3)),
            (" 6 ", Some(6)), // surrounding whitespace is trimmed
            ("1", Some(1)),
            ("0", None), // the historical zero-worker footgun
            ("", None),
            ("  ", None),
            ("+4", None), // parse::<usize> would accept this; we do not
            ("-2", None),
            ("0x10", None),
            ("1e3", None),
            ("4 threads", None),
            ("99999999999999999999999999", None), // usize overflow
        ] {
            std::env::set_var("SCIS_THREADS", raw);
            let got = auto_threads();
            match want {
                Some(n) => assert_eq!(got, n, "SCIS_THREADS={raw:?}"),
                None => assert_eq!(got, hw, "SCIS_THREADS={raw:?} must fall back"),
            }
            assert!(got >= 1, "SCIS_THREADS={raw:?} resolved to zero workers");
            // the policy layer must agree with the raw resolver
            assert_eq!(ExecPolicy::Auto.resolve(), got, "SCIS_THREADS={raw:?}");
        }
        std::env::remove_var("SCIS_THREADS");
        assert_eq!(auto_threads(), hw);
    }
}
