//! Execution policy: who decides how many worker threads a kernel may use.
//!
//! Every compute layer in the workspace (tensor kernels, NN forward/backward,
//! Sinkhorn sweeps, the SSE Monte-Carlo fan-out) takes an [`ExecPolicy`]
//! instead of a raw thread count. The resolution order is
//!
//! 1. an **explicit policy** ([`ExecPolicy::Serial`] or
//!    [`ExecPolicy::Threads`]) always wins;
//! 2. [`ExecPolicy::Auto`] consults the **`SCIS_THREADS`** environment
//!    variable (a positive integer; `1` forces serial);
//! 3. if `SCIS_THREADS` is unset or unparsable, Auto falls back to
//!    [`std::thread::available_parallelism`].
//!
//! # Determinism contract
//!
//! Parallelism never changes results. Every parallel path in the workspace
//! partitions *output rows* across workers — each row is produced by exactly
//! one worker from read-only inputs, with the same per-row arithmetic as the
//! serial loop — and global reductions are computed as per-row partials
//! summed in ascending row order. Consequently results are bit-identical for
//! any thread count, and seeded experiments stay reproducible regardless of
//! the machine or `SCIS_THREADS` setting.

/// How a kernel or pipeline stage may use worker threads.
///
/// The default is [`ExecPolicy::Auto`], which defers to the `SCIS_THREADS`
/// environment variable and then the machine's available parallelism. All
/// variants produce bit-identical results; the policy only trades wall-clock
/// time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecPolicy {
    /// Single-threaded: never spawn workers.
    Serial,
    /// Exactly this many worker threads (clamped to at least 1).
    Threads(usize),
    /// Resolve from `SCIS_THREADS`, else `available_parallelism`.
    #[default]
    Auto,
}

impl ExecPolicy {
    /// A policy with exactly `n` worker threads (`n` is clamped to ≥ 1).
    pub fn threads(n: usize) -> Self {
        ExecPolicy::Threads(n.max(1))
    }

    /// Resolves the policy to a concrete worker count (always ≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threads(n) => n.max(1),
            ExecPolicy::Auto => crate::par::default_threads(),
        }
    }

    /// Worker count clamped to the number of independent work items
    /// (spawning more threads than rows is pure overhead).
    pub fn workers(self, items: usize) -> usize {
        self.resolve().min(items.max(1))
    }

    /// True when the policy resolves to a single worker.
    pub fn is_serial(self) -> bool {
        self.resolve() <= 1
    }

    /// Parses the CLI/bundle spelling of a policy: `"serial"`, `"auto"`, or
    /// a positive thread count (`"4"`). `"0"` means serial, matching the
    /// CLI's historical `--threads 0` convention.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "serial" => Ok(ExecPolicy::Serial),
            "auto" => Ok(ExecPolicy::Auto),
            n => match n.parse::<usize>() {
                Ok(0) => Ok(ExecPolicy::Serial),
                Ok(n) => Ok(ExecPolicy::Threads(n)),
                Err(_) => Err(format!(
                    "bad exec policy {:?} (expected serial, auto, or a thread count)",
                    s
                )),
            },
        }
    }
}

/// Runs `f(row_index, row)` for every `row_len`-sized row of `data`,
/// partitioning rows into contiguous blocks across `threads` scoped workers.
///
/// Each row is visited by exactly one worker with exactly the arguments the
/// serial loop would pass, so any per-row computation is bit-identical to
/// its serial counterpart. With `threads <= 1` no threads are spawned.
///
/// # Panics
/// Panics if `row_len` is zero or does not divide `data.len()`.
pub fn for_each_row<F>(data: &mut [f64], row_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(row_len > 0, "for_each_row: row_len must be positive");
    assert_eq!(data.len() % row_len, 0, "for_each_row: ragged rows");
    let rows = data.len() / row_len;
    let threads = threads.max(1).min(rows.max(1));
    if threads == 1 {
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            f(i, row);
        }
        return;
    }
    let chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (block_idx, block) in data.chunks_mut(chunk * row_len).enumerate() {
            let row0 = block_idx * chunk;
            let f = &f;
            scope.spawn(move || {
                for (local_i, row) in block.chunks_mut(row_len).enumerate() {
                    f(row0 + local_i, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_constructor_clamps_to_one() {
        assert_eq!(ExecPolicy::threads(0), ExecPolicy::Threads(1));
        assert_eq!(ExecPolicy::threads(6), ExecPolicy::Threads(6));
    }

    #[test]
    fn serial_resolves_to_one_worker() {
        assert_eq!(ExecPolicy::Serial.resolve(), 1);
        assert!(ExecPolicy::Serial.is_serial());
        assert_eq!(ExecPolicy::Threads(8).resolve(), 8);
        assert!(!ExecPolicy::Threads(8).is_serial());
    }

    #[test]
    fn auto_resolves_positive() {
        assert!(ExecPolicy::Auto.resolve() >= 1);
    }

    #[test]
    fn workers_clamps_to_item_count() {
        assert_eq!(ExecPolicy::Threads(16).workers(3), 3);
        assert_eq!(ExecPolicy::Threads(2).workers(100), 2);
        assert_eq!(ExecPolicy::Threads(4).workers(0), 1);
    }

    #[test]
    fn for_each_row_matches_serial_for_any_thread_count() {
        let rows = 37;
        let cols = 5;
        let fill = |i: usize, row: &mut [f64]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 31 + j) as f64 * 0.25 - 3.0;
            }
        };
        let mut want = vec![0.0; rows * cols];
        for_each_row(&mut want, cols, 1, fill);
        for threads in [2, 3, 7, 64] {
            let mut got = vec![0.0; rows * cols];
            for_each_row(&mut got, cols, threads, fill);
            assert_eq!(got, want, "threads = {}", threads);
        }
    }

    #[test]
    fn for_each_row_handles_empty_input() {
        let mut data: Vec<f64> = vec![];
        for_each_row(&mut data, 4, 8, |_, _| panic!("no rows to visit"));
    }
}
