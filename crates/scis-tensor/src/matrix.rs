//! Dense row-major `f64` matrix.
//!
//! [`Matrix`] is the single numerical container used across the workspace.
//! It stores its elements contiguously in row-major order, which matches the
//! access pattern of every algorithm in the reproduction (mini-batches are
//! rows; features are columns).
//!
//! All binary operations are shape-checked and panic on mismatch: shape
//! errors here are programming errors, not recoverable conditions, exactly
//! like out-of-bounds slice indexing.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(
            i < self.rows,
            "row {} out of bounds ({} rows)",
            i,
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(
            i < self.rows,
            "row {} out of bounds ({} rows)",
            i,
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Contiguous borrow of rows `[start, end)` — zero-copy thanks to the
    /// row-major layout. The backbone of shard-wise streaming passes.
    #[inline]
    pub fn row_block(&self, start: usize, end: usize) -> &[f64] {
        assert!(
            start <= end && end <= self.rows,
            "row_block {}..{} out of bounds ({} rows)",
            start,
            end,
            self.rows
        );
        &self.data[start * self.cols..end * self.cols]
    }

    /// Iterator over `(start_row, rows, block)` triples of at most
    /// `block_rows` rows each, in row order; the final block may be short.
    ///
    /// # Panics
    /// Panics if `block_rows` is zero.
    pub fn row_blocks(&self, block_rows: usize) -> impl Iterator<Item = (usize, usize, &[f64])> {
        assert!(block_rows > 0, "row_blocks: block_rows must be > 0");
        let (rows, cols) = (self.rows, self.cols);
        (0..rows.div_ceil(block_rows)).map(move |k| {
            let start = k * block_rows;
            let end = (start + block_rows).min(rows);
            (start, end - start, &self.data[start * cols..end * cols])
        })
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "col {} out of bounds ({} cols)",
            j,
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` from a slice of length `rows`.
    pub fn set_col(&mut self, j: usize, values: &[f64]) {
        assert!(j < self.cols);
        assert_eq!(values.len(), self.rows, "set_col: length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Returns a new matrix whose rows are `self`'s rows at `indices`
    /// (indices may repeat; this is the bootstrap/subsample primitive).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination `f(self, other)` into a new matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.assert_same_shape(other, "zip");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place elementwise combination `self = f(self, other)`.
    pub fn zip_inplace(&mut self, other: &Matrix, f: impl Fn(f64, f64) -> f64) {
        self.assert_same_shape(other, "zip_inplace");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product — the paper's `⊙`.
    ///
    /// Unrolled four-wide like the GEMM kernels; elementwise ops have no
    /// cross-element accumulation, so unrolling cannot change any bit.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "hadamard");
        let mut out = self.clone();
        let mut ac = out.data.chunks_exact_mut(4);
        let mut bc = other.data.chunks_exact(4);
        for (a4, b4) in ac.by_ref().zip(bc.by_ref()) {
            a4[0] *= b4[0];
            a4[1] *= b4[1];
            a4[2] *= b4[2];
            a4[3] *= b4[3];
        }
        for (a, &b) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *a *= b;
        }
        out
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// `self += alpha * other` (AXPY), in place. Unrolled four-wide; each
    /// element is an independent fused chain, so this is bit-identical to
    /// the scalar loop.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        self.assert_same_shape(other, "axpy");
        let mut ac = self.data.chunks_exact_mut(4);
        let mut bc = other.data.chunks_exact(4);
        for (a4, b4) in ac.by_ref().zip(bc.by_ref()) {
            a4[0] += alpha * b4[0];
            a4[1] += alpha * b4[1];
            a4[2] += alpha * b4[2];
            a4[3] += alpha * b4[3];
        }
        for (a, &b) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element (NaN-ignoring; `-inf` if all NaN or empty).
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element (NaN-ignoring; `+inf` if all NaN or empty).
    pub fn min(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::INFINITY, f64::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Frobenius inner product `tr(selfᵀ · other)` — `⟨P, C⟩` in the paper.
    pub fn frobenius_dot(&self, other: &Matrix) -> f64 {
        self.assert_same_shape(other, "frobenius_dot");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Per-row sums as a vector of length `rows`.
    pub fn row_sums(&self) -> Vec<f64> {
        self.rows_iter().map(|r| r.iter().sum()).collect()
    }

    /// Per-column sums as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (acc, &v) in out.iter_mut().zip(row) {
                *acc += v;
            }
        }
        out
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let n = self.rows.max(1) as f64;
        self.col_sums().into_iter().map(|s| s / n).collect()
    }

    /// Adds `row` (length `cols`) to every row — broadcast add used for
    /// biases. Four-wide unrolled per row (bit-identical: elementwise).
    pub fn add_row_broadcast(&self, row: &[f64]) -> Matrix {
        assert_eq!(row.len(), self.cols, "add_row_broadcast: length mismatch");
        let mut out = self.clone();
        for r in out.data.chunks_exact_mut(self.cols.max(1)) {
            let mut ac = r.chunks_exact_mut(4);
            let mut bc = row.chunks_exact(4);
            for (a4, b4) in ac.by_ref().zip(bc.by_ref()) {
                a4[0] += b4[0];
                a4[1] += b4[1];
                a4[2] += b4[2];
                a4[3] += b4[3];
            }
            for (a, &b) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
                *a += b;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat: row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat: col mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns the columns in `cols_idx` as a new matrix (order preserved).
    pub fn select_cols(&self, cols_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols_idx.len());
        for i in 0..self.rows {
            for (k, &j) in cols_idx.iter().enumerate() {
                out[(i, k)] = self[(i, j)];
            }
        }
        out
    }

    /// True if any element is NaN.
    pub fn has_nan(&self) -> bool {
        self.data.iter().any(|v| v.is_nan())
    }

    fn assert_same_shape(&self, other: &Matrix, what: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "{}: shape mismatch {:?} vs {:?}",
            what,
            self.shape(),
            other.shape()
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_shapes() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.len(), 12);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let e = Matrix::eye(3);
        assert_eq!(e[(0, 0)], 1.0);
        assert_eq!(e[(1, 0)], 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_blocks_tile_the_matrix_in_order() {
        let m = Matrix::from_fn(7, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.row_block(2, 4), &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
        assert_eq!(m.row_block(0, 0), &[] as &[f64]);
        let blocks: Vec<_> = m.row_blocks(3).collect();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].0, 0);
        assert_eq!(blocks[0].1, 3);
        assert_eq!(blocks[2], (6, 1, m.row_block(6, 7)));
        let reassembled: Vec<f64> = blocks.iter().flat_map(|b| b.2.iter().copied()).collect();
        assert_eq!(reassembled, m.as_slice());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_block_rejects_bad_range() {
        let m = Matrix::zeros(3, 2);
        let _ = m.row_block(1, 4);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        assert_eq!(a.add(&b).sum(), 110.0);
        assert_eq!(b.sub(&a).sum(), 90.0);
        assert_eq!(a.hadamard(&b).as_slice(), &[10.0, 40.0, 90.0, 160.0]);
        assert_eq!(a.scale(2.0).sum(), 20.0);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.as_slice(), &[6.0, 12.0, 18.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let _ = Matrix::zeros(2, 2).add(&Matrix::zeros(2, 3));
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.row_sums(), vec![6.0, 15.0]);
        assert_eq!(m.col_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(m.col_means(), vec![2.5, 3.5, 4.5]);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.max(), 6.0);
        assert_eq!(m.min(), 1.0);
    }

    #[test]
    fn frobenius_dot_matches_trace_form() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        // tr(aᵀ b) = Σ a_ij b_ij
        assert_eq!(a.frobenius_dot(&b), 5.0 + 12.0 + 21.0 + 32.0);
    }

    #[test]
    fn select_rows_allows_repeats() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let s = m.select_rows(&[2, 2, 0]);
        assert_eq!(s.as_slice(), &[3.0, 3.0, 1.0]);
    }

    #[test]
    fn concat_shapes() {
        let a = Matrix::ones(2, 2);
        let b = Matrix::zeros(2, 3);
        let h = a.hcat(&b);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h[(1, 1)], 1.0);
        assert_eq!(h[(1, 4)], 0.0);

        let v = a.vcat(&Matrix::zeros(1, 2));
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v[(2, 0)], 0.0);
    }

    #[test]
    fn broadcast_bias_add() {
        let m = Matrix::zeros(3, 2).add_row_broadcast(&[1.0, -1.0]);
        assert_eq!(m.col(0), vec![1.0; 3]);
        assert_eq!(m.col(1), vec![-1.0; 3]);
    }

    #[test]
    fn nan_handling_in_extrema() {
        let m = Matrix::from_rows(&[&[f64::NAN, 2.0], &[1.0, f64::NAN]]);
        assert!(m.has_nan());
        assert_eq!(m.max(), 2.0);
        assert_eq!(m.min(), 1.0);
    }

    #[test]
    fn set_col_and_select_cols() {
        let mut m = Matrix::zeros(3, 3);
        m.set_col(1, &[7.0, 8.0, 9.0]);
        assert_eq!(m.col(1), vec![7.0, 8.0, 9.0]);
        let s = m.select_cols(&[1, 0]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.col(0), vec![7.0, 8.0, 9.0]);
        assert_eq!(s.col(1), vec![0.0; 3]);
    }
}
