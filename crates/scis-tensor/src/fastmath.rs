//! Compute-precision selection and the accelerated transcendental kernels.
//!
//! The default numeric mode of the whole workspace is pure `f64`: every
//! kernel accumulates in the order the serial reference fixes, so results
//! are bit-identical at any thread count *and* across releases. This module
//! hosts the opt-in fast path:
//!
//! * [`Precision::F32`] — operands of the GEMM / sweep hot loops are stored
//!   as `f32` (halving memory bandwidth, the bottleneck of the substrate's
//!   medium-sized products) while every accumulator stays `f64`. Results
//!   differ from the default path by the f32 rounding of the *inputs* only;
//!   they remain bit-identical across thread counts for a fixed mode.
//! * [`fast_exp`] — a branch-light polynomial `exp` the compiler can
//!   auto-vectorize across a row, used by the accelerated Sinkhorn sweeps
//!   (the pipeline's dominant cost is literally millions of `exp` calls).
//!
//! Both are wired through `AccelConfig` upstream and default **off**, per
//! the repo-wide contract that the default path never moves a bit.

/// Storage precision of the compute hot loops. Accumulation is always `f64`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Pure double precision — the bit-stable default path.
    #[default]
    F64,
    /// `f32` operand storage with `f64` accumulation: operands of the GEMM
    /// and Sinkhorn sweep kernels are rounded to `f32` once, then widened
    /// back per multiply. Opt-in via `AccelConfig::f32_compute`.
    F32,
}

impl Precision {
    /// True when the mode stores operands in `f32`.
    pub fn is_f32(self) -> bool {
        matches!(self, Precision::F32)
    }

    /// Parses the CLI/bundle spelling: `"f64"` or `"f32"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "f64" => Ok(Precision::F64),
            "f32" => Ok(Precision::F32),
            other => Err(format!("bad precision {:?} (expected f64 or f32)", other)),
        }
    }
}

// Argument-reduction constants: ln(2) split hi/lo so `x - k·ln2` is exact to
// well below the polynomial's error, and the round-to-nearest "magic shift".
const LOG2_E: f64 = std::f64::consts::LOG2_E;
const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 · 2^52
const LN2_HI: f64 = 0.693_147_180_369_123_8;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

/// Branch-light polynomial `e^x` with ≤ ~1e-13 relative error.
///
/// Classic reduction `x = k·ln2 + r`, `|r| ≤ ln2/2`, degree-11 Taylor for
/// `e^r` (Horner), and a bit-twiddled `2^k` scale. The body is free of
/// data-dependent branches, so LLVM vectorizes it across a row of logits —
/// which is why the accelerated Sinkhorn sweeps use it in place of the
/// (scalar, call-per-element) libm `exp`.
///
/// Domain notes: inputs are clamped to `[-708, 709]`, so deep underflow
/// saturates near `2.3e-308` instead of flushing to exactly `0.0` (harmless
/// for log-sum-exp work, where such terms vanish against the leading `1.0`)
/// and `+inf` saturates to a huge finite value. `NaN` propagates.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    // clamp keeps the 2^k scale in the representable exponent range;
    // NaN passes through (f64::clamp propagates NaN)
    let x = x.clamp(-708.0, 709.0);
    let t = x * LOG2_E + MAGIC;
    let kf = t - MAGIC; // round-to-nearest(x · log2 e), exactly an integer
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    // e^r, |r| ≤ 0.3466: Taylor to degree 11 leaves < 1e-14 relative error.
    // Horner evaluation written as a flat `let` chain (same association as
    // the nested form, which rustfmt cannot format).
    let p = 1.0 / 39916800.0;
    let p = 1.0 / 3628800.0 + r * p;
    let p = 1.0 / 362880.0 + r * p;
    let p = 1.0 / 40320.0 + r * p;
    let p = 1.0 / 5040.0 + r * p;
    let p = 1.0 / 720.0 + r * p;
    let p = 1.0 / 120.0 + r * p;
    let p = 1.0 / 24.0 + r * p;
    let p = 1.0 / 6.0 + r * p;
    let p = 0.5 + r * p;
    let p = 1.0 + r * p;
    let p = 1.0 + r * p;
    // 2^k: k is recovered from the magic-shifted representation's low
    // mantissa bits — an integer add and shift, no float→int conversion,
    // so the whole body stays vectorizable. (For |k| ≤ 1022 the mantissa
    // field of `t` is exactly 2^51 + k, and the 2^51 vanishes mod 2^12
    // under the shift.) NaN: p is already NaN, and NaN times any scale
    // (even a garbage zero) stays NaN.
    let scale = f64::from_bits(((t.to_bits() as i64).wrapping_add(1023) << 52) as u64);
    p * scale
}

/// `xs[i] ← fast_exp(xs[i] − shift)` in place, over a whole row of logits.
///
/// Split from any summing loop on purpose: with no cross-iteration
/// dependency the polynomial pipelines across elements (and vectorizes),
/// where a fused `sum += fast_exp(…)` chain would serialize every element
/// on the accumulator add.
#[inline]
pub fn fast_exp_shifted(xs: &mut [f64], shift: f64) {
    for x in xs.iter_mut() {
        *x = fast_exp(*x - shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_default_is_f64() {
        assert_eq!(Precision::default(), Precision::F64);
        assert!(!Precision::F64.is_f32());
        assert!(Precision::F32.is_f32());
    }

    #[test]
    fn precision_parse_roundtrip() {
        assert_eq!(Precision::parse("f64"), Ok(Precision::F64));
        assert_eq!(Precision::parse(" f32 "), Ok(Precision::F32));
        assert!(Precision::parse("f16").is_err());
    }

    #[test]
    fn fast_exp_matches_libm_within_tolerance() {
        // dense sweep over the range the Sinkhorn logits actually occupy
        let mut worst = 0.0f64;
        let mut x = -700.0f64;
        while x <= 700.0 {
            let want = x.exp();
            let got = fast_exp(x);
            let rel = if want > 0.0 {
                ((got - want) / want).abs()
            } else {
                got.abs()
            };
            worst = worst.max(rel);
            x += 0.037;
        }
        assert!(worst < 1e-12, "worst relative error {worst:e}");
    }

    #[test]
    fn fast_exp_edge_cases() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert!((fast_exp(1.0) - std::f64::consts::E).abs() < 1e-13);
        // deep underflow saturates near the smallest normal, not exactly 0
        assert!(fast_exp(-1e9) < 1e-300);
        assert!(fast_exp(f64::NEG_INFINITY) < 1e-300);
        assert!(fast_exp(1e9).is_finite() && fast_exp(1e9) > 1e300);
        assert!(fast_exp(f64::NAN).is_nan());
    }
}
