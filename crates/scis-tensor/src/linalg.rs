//! Small dense linear-algebra kernels.
//!
//! The reproduction needs exact solves in two places: ridge regression inside
//! the MICE baseline (normal equations, SPD systems) and general small solves
//! in tests. Cholesky covers the SPD path; a partially pivoted LU covers the
//! general path.

use crate::matrix::Matrix;
use crate::ops::{matmul_at, matvec};

/// Error type for factorization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not positive definite (Cholesky pivot ≤ 0).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The matrix is singular to working precision (LU pivot ~ 0).
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {}", pivot)
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix singular at pivot {}", pivot)
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// `a` must be symmetric positive definite; only its lower triangle is read.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    assert_eq!(a.rows(), a.cols(), "cholesky: matrix must be square");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for SPD `A` via Cholesky.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let l = cholesky(a)?;
    let n = l.rows();
    assert_eq!(b.len(), n, "solve_spd: rhs length mismatch");
    // forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // backward: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(x)
}

/// Solves the ridge-regression normal equations
/// `(XᵀX + ridge·I) w = Xᵀ y` and returns `w`.
///
/// This is the workhorse of the MICE chained-equation baseline; `ridge > 0`
/// guarantees the system is SPD regardless of collinearity.
pub fn ridge_fit(x: &Matrix, y: &[f64], ridge: f64) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(x.rows(), y.len(), "ridge_fit: sample count mismatch");
    assert!(ridge >= 0.0, "ridge_fit: negative ridge");
    let mut gram = matmul_at(x, x);
    for i in 0..gram.rows() {
        gram[(i, i)] += ridge;
    }
    let ym = Matrix::from_vec(y.len(), 1, y.to_vec());
    let xty = matmul_at(x, &ym);
    solve_spd(&gram, xty.as_slice())
}

/// Solves `A x = b` for general square `A` via LU with partial pivoting.
pub fn solve_lu(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(a.rows(), a.cols(), "solve_lu: matrix must be square");
    let n = a.rows();
    assert_eq!(b.len(), n, "solve_lu: rhs length mismatch");
    let mut lu = a.clone();
    let mut x = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // partial pivot
        let mut p = k;
        let mut max = lu[(k, k)].abs();
        for i in (k + 1)..n {
            if lu[(i, k)].abs() > max {
                max = lu[(i, k)].abs();
                p = i;
            }
        }
        if max < 1e-14 {
            return Err(LinalgError::Singular { pivot: k });
        }
        if p != k {
            for j in 0..n {
                let t = lu[(k, j)];
                lu[(k, j)] = lu[(p, j)];
                lu[(p, j)] = t;
            }
            x.swap(k, p);
            perm.swap(k, p);
        }
        for i in (k + 1)..n {
            let f = lu[(i, k)] / lu[(k, k)];
            lu[(i, k)] = f;
            for j in (k + 1)..n {
                lu[(i, j)] -= f * lu[(k, j)];
            }
            x[i] -= f * x[k];
        }
    }
    // back substitution
    for i in (0..n).rev() {
        let mut sum = x[i];
        for j in (i + 1)..n {
            sum -= lu[(i, j)] * x[j];
        }
        x[i] = sum / lu[(i, i)];
    }
    Ok(x)
}

/// Squared Euclidean norm of every row of `m`.
///
/// Building block of the decomposed pairwise-distance kernel:
/// `‖aᵢ − bⱼ‖² = ‖aᵢ‖² + ‖bⱼ‖² − 2·aᵢ·bⱼ`. The serial accumulation order is
/// fixed (left-to-right over each row) so results are bit-identical across
/// thread counts.
pub fn row_sq_norms(m: &Matrix) -> Vec<f64> {
    (0..m.rows())
        .map(|i| m.row(i).iter().map(|&v| v * v).sum())
        .collect()
}

/// Assembles squared pairwise distances from a cross Gram matrix and row
/// norms: `D[i][j] = max(an[i] + bn[j] − 2·gram[i][j], 0)`.
///
/// `gram` must be the `a·bᵀ` inner-product matrix (e.g. from
/// [`crate::par::matmul_bt_exec`]); `an`/`bn` the corresponding
/// [`row_sq_norms`]. The clamp at zero guards against small negative values
/// from catastrophic cancellation when `aᵢ ≈ bⱼ`.
pub fn sq_dists_from_gram(gram: &Matrix, an: &[f64], bn: &[f64]) -> Matrix {
    assert_eq!(gram.rows(), an.len(), "sq_dists_from_gram: an length");
    assert_eq!(gram.cols(), bn.len(), "sq_dists_from_gram: bn length");
    Matrix::from_fn(gram.rows(), gram.cols(), |i, j| {
        (an[i] + bn[j] - 2.0 * gram[(i, j)]).max(0.0)
    })
}

/// Residual `‖A x − b‖₂` — used by tests to validate solvers.
pub fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = matvec(a, x);
    ax.iter()
        .zip(b)
        .map(|(&p, &q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;
    use crate::rng::Rng64;

    fn random_spd(n: usize, rng: &mut Rng64) -> Matrix {
        let b = Matrix::from_fn(n, n, |_, _| rng.normal());
        let mut a = matmul_at(&b, &b);
        for i in 0..n {
            a[(i, i)] += n as f64; // well-conditioned
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let mut rng = Rng64::seed_from_u64(1);
        let a = random_spd(6, &mut rng);
        let l = cholesky(&a).unwrap();
        let llt = matmul(&l, &l.transpose());
        for (x, y) in a.as_slice().iter().zip(llt.as_slice()) {
            assert!((x - y).abs() < 1e-9, "{} vs {}", x, y);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigvals 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn solve_spd_residual_small() {
        let mut rng = Rng64::seed_from_u64(2);
        let a = random_spd(8, &mut rng);
        let b: Vec<f64> = (0..8).map(|_| rng.normal()).collect();
        let x = solve_spd(&a, &b).unwrap();
        assert!(residual_norm(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn solve_lu_residual_small_and_handles_pivoting() {
        // leading zero forces a row swap
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 1.0, 1.0], &[2.0, 0.0, 3.0]]);
        let b = vec![5.0, 6.0, 13.0];
        let x = solve_lu(&a, &b).unwrap();
        assert!(residual_norm(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn solve_lu_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve_lu(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn ridge_recovers_weights_on_clean_data() {
        let mut rng = Rng64::seed_from_u64(3);
        let n = 200;
        let d = 4;
        let w_true = [1.5, -2.0, 0.5, 3.0];
        let x = Matrix::from_fn(n, d, |_, _| rng.normal());
        let y: Vec<f64> = (0..n)
            .map(|i| x.row(i).iter().zip(&w_true).map(|(&a, &b)| a * b).sum())
            .collect();
        let w = ridge_fit(&x, &y, 1e-6).unwrap();
        for (got, want) in w.iter().zip(&w_true) {
            assert!((got - want).abs() < 1e-4, "{} vs {}", got, want);
        }
    }

    #[test]
    fn row_sq_norms_matches_manual() {
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0], &[-1.0, 2.0]]);
        assert_eq!(row_sq_norms(&m), vec![25.0, 0.0, 5.0]);
    }

    #[test]
    fn sq_dists_from_gram_matches_direct() {
        let mut rng = Rng64::seed_from_u64(5);
        let a = Matrix::from_fn(7, 4, |_, _| rng.normal());
        let b = Matrix::from_fn(5, 4, |_, _| rng.normal());
        let gram = crate::par::matmul_bt_exec(&a, &b, crate::ExecPolicy::Serial);
        let d = sq_dists_from_gram(&gram, &row_sq_norms(&a), &row_sq_norms(&b));
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let direct: f64 = a
                    .row(i)
                    .iter()
                    .zip(b.row(j))
                    .map(|(&x, &y)| (x - y) * (x - y))
                    .sum();
                assert!(
                    (d[(i, j)] - direct).abs() < 1e-10,
                    "({}, {}): {} vs {}",
                    i,
                    j,
                    d[(i, j)],
                    direct
                );
            }
        }
    }

    #[test]
    fn sq_dists_from_gram_clamps_cancellation_to_zero() {
        // identical rows: exact distance 0; the decomposition may produce a
        // tiny negative before the clamp
        let a = Matrix::from_rows(&[&[1e8, -1e8, 3.0]]);
        let gram = crate::par::matmul_bt_exec(&a, &a, crate::ExecPolicy::Serial);
        let n = row_sq_norms(&a);
        let d = sq_dists_from_gram(&gram, &n, &n);
        assert!(d[(0, 0)] >= 0.0);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let mut rng = Rng64::seed_from_u64(4);
        let x = Matrix::from_fn(50, 3, |_, _| rng.normal());
        let y: Vec<f64> = (0..50)
            .map(|i| x[(i, 0)] * 2.0 + rng.normal() * 0.1)
            .collect();
        let w_small = ridge_fit(&x, &y, 1e-6).unwrap();
        let w_big = ridge_fit(&x, &y, 1e6).unwrap();
        assert!(w_big[0].abs() < w_small[0].abs());
        assert!(w_big.iter().all(|w| w.abs() < 1e-3));
    }
}
