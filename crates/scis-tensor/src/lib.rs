#![warn(missing_docs)]

//! `scis-tensor` — dense numerical substrate for the SCIS reproduction.
//!
//! This crate provides the row-major [`Matrix`] type together with the
//! linear-algebra, random-number and statistics helpers every other crate in
//! the workspace builds on. It is deliberately dependency-free: the PRNG is
//! a self-contained xoshiro256++ implementation so that every experiment in
//! the paper reproduction is bit-for-bit deterministic under a fixed seed.
//!
//! # Modules
//! * [`matrix`] — the dense row-major `f64` matrix with shape-checked ops.
//! * [`ops`] — matrix multiplication kernels (naive + blocked) and
//!   broadcast helpers.
//! * [`exec`] — the [`ExecPolicy`] execution-policy type and the
//!   deterministic row-block parallel helpers.
//! * [`par`] — policy-aware scoped-thread kernels (bit-identical to serial).
//! * [`fastmath`] — the opt-in compute [`Precision`] mode (`f32` storage,
//!   `f64` accumulation) and the polynomial `fast_exp` used by the
//!   accelerated Sinkhorn sweeps.
//! * [`linalg`] — Cholesky factorization and ridge solvers used by the MICE
//!   baseline and the SSE module.
//! * [`rng`] — deterministic xoshiro256++ PRNG with Gaussian sampling.
//! * [`stats`] — column statistics (mean, variance, quantiles).
//! * [`deadline`] — cooperative run-deadline token for graceful shutdown.

pub mod deadline;
pub mod exec;
pub mod fastmath;
pub mod linalg;
pub mod matrix;
pub mod ops;
pub mod par;
pub mod rng;
pub mod stats;

pub use deadline::RunDeadline;
pub use exec::ExecPolicy;
pub use fastmath::Precision;
pub use matrix::Matrix;
pub use rng::{Rng64, RngState};
