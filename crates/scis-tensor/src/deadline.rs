//! Cooperative run-deadline token.
//!
//! [`RunDeadline`] is a cheap, cloneable cancellation token checked at
//! coarse work boundaries (training batches/epochs, Sinkhorn sweeps, SSE
//! Monte-Carlo chunks). It never aborts work mid-kernel: callers poll
//! [`RunDeadline::expired`] and wind down gracefully, which is what keeps
//! deadline-interrupted runs checkpointable and deterministic.
//!
//! Two expiry sources exist:
//! * a wall-clock deadline ([`RunDeadline::after`]), the production path
//!   behind `--deadline-secs`;
//! * a deterministic check-countdown ([`RunDeadline::trip_after`]), used by
//!   chaos tests to interrupt training at a reproducible point without any
//!   timing dependence.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
enum Expiry {
    /// Wall-clock: expired once `Instant::now() >= at`.
    WallClock { at: Instant },
    /// Deterministic: expires after `remaining` calls to `expired()`.
    Countdown { remaining: AtomicU64 },
}

#[derive(Debug)]
struct DeadlineInner {
    expiry: Expiry,
    /// Latch for `newly_expired`: set on the first observation of expiry.
    reported: AtomicBool,
}

/// A shared cooperative-cancellation token; `None` means "no deadline" and
/// every check is a no-op.
#[derive(Clone, Debug, Default)]
pub struct RunDeadline(Option<Arc<DeadlineInner>>);

impl RunDeadline {
    /// A token that never expires (the default).
    pub const fn none() -> Self {
        RunDeadline(None)
    }

    /// A wall-clock deadline `dur` from now.
    pub fn after(dur: Duration) -> Self {
        RunDeadline(Some(Arc::new(DeadlineInner {
            expiry: Expiry::WallClock {
                at: Instant::now() + dur,
            },
            reported: AtomicBool::new(false),
        })))
    }

    /// A deterministic token that expires after `checks` calls to
    /// [`RunDeadline::expired`] (across all clones). Test-injection hook:
    /// lets chaos tests interrupt a run at an exactly reproducible point.
    pub fn trip_after(checks: u64) -> Self {
        RunDeadline(Some(Arc::new(DeadlineInner {
            expiry: Expiry::Countdown {
                remaining: AtomicU64::new(checks),
            },
            reported: AtomicBool::new(false),
        })))
    }

    /// Whether any deadline is attached at all.
    pub fn is_some(&self) -> bool {
        self.0.is_some()
    }

    /// Polls the deadline. Non-latching: keeps returning `true` once
    /// expired. For countdown tokens every call decrements the budget.
    pub fn expired(&self) -> bool {
        match &self.0 {
            None => false,
            Some(inner) => match &inner.expiry {
                Expiry::WallClock { at } => Instant::now() >= *at,
                Expiry::Countdown { remaining } => {
                    // Saturating decrement: expired once the budget is gone.
                    let prev = remaining
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                            Some(v.saturating_sub(1))
                        })
                        .unwrap_or(0);
                    prev == 0
                }
            },
        }
    }

    /// Like [`RunDeadline::expired`], but returns `true` exactly once per
    /// token (across all clones) — the hook for emitting a single
    /// `DeadlineHit` telemetry event.
    pub fn newly_expired(&self) -> bool {
        match &self.0 {
            None => false,
            Some(inner) => self.expired() && !inner.reported.swap(true, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = RunDeadline::none();
        assert!(!d.is_some());
        for _ in 0..100 {
            assert!(!d.expired());
            assert!(!d.newly_expired());
        }
    }

    #[test]
    fn countdown_trips_after_budget() {
        let d = RunDeadline::trip_after(3);
        assert!(d.is_some());
        assert!(!d.expired()); // 3 -> 2
        assert!(!d.expired()); // 2 -> 1
        assert!(!d.expired()); // 1 -> 0
        assert!(d.expired()); // exhausted
        assert!(d.expired()); // stays expired
    }

    #[test]
    fn countdown_is_shared_across_clones() {
        let d = RunDeadline::trip_after(2);
        let d2 = d.clone();
        assert!(!d.expired());
        assert!(!d2.expired());
        assert!(d.expired());
        assert!(d2.expired());
    }

    #[test]
    fn newly_expired_latches_once() {
        let d = RunDeadline::trip_after(0);
        let d2 = d.clone();
        assert!(d.newly_expired());
        assert!(!d.newly_expired());
        assert!(!d2.newly_expired());
        assert!(d.expired());
    }

    #[test]
    fn wall_clock_deadline_expires() {
        let d = RunDeadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired());
        assert!(d.newly_expired());
        assert!(!d.newly_expired());
    }

    #[test]
    fn wall_clock_far_future_not_expired() {
        let d = RunDeadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(!d.newly_expired());
    }
}
