//! Scalar and per-column statistics, NaN-aware.
//!
//! Missing cells are encoded as NaN throughout the workspace, so every
//! statistic here skips NaNs — `nan_mean` of a column is exactly the
//! "observed mean" the statistical imputers need.

use crate::matrix::Matrix;

/// Mean of the non-NaN entries (`None` if all entries are NaN or empty).
pub fn nan_mean(values: &[f64]) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &v in values {
        if !v.is_nan() {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Population variance of the non-NaN entries (`None` if fewer than 1 value).
pub fn nan_var(values: &[f64]) -> Option<f64> {
    let mean = nan_mean(values)?;
    let mut acc = 0.0;
    let mut n = 0usize;
    for &v in values {
        if !v.is_nan() {
            let d = v - mean;
            acc += d * d;
            n += 1;
        }
    }
    Some(acc / n as f64)
}

/// Standard deviation of the non-NaN entries.
pub fn nan_std(values: &[f64]) -> Option<f64> {
    nan_var(values).map(f64::sqrt)
}

/// Median of the non-NaN entries.
pub fn nan_median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Linear-interpolation quantile (`q` in `[0,1]`) of the non-NaN entries.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile: q out of [0,1]");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    // NaNs are filtered above; total_cmp keeps this panic-free even if the
    // filter invariant is ever broken by an upstream refactor
    v.sort_unstable_by(f64::total_cmp);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Min and max of the non-NaN entries.
pub fn nan_min_max(values: &[f64]) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut seen = false;
    for &v in values {
        if !v.is_nan() {
            seen = true;
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if seen {
        Some((lo, hi))
    } else {
        None
    }
}

/// Per-column observed means of a matrix; columns with no observed value get
/// `fallback`.
pub fn col_nan_means(m: &Matrix, fallback: f64) -> Vec<f64> {
    (0..m.cols())
        .map(|j| nan_mean(&m.col(j)).unwrap_or(fallback))
        .collect()
}

/// Pearson correlation of two equal-length slices over positions where both
/// are observed.
pub fn nan_pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "nan_pearson: length mismatch");
    let pairs: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter(|(a, b)| !a.is_nan() && !b.is_nan())
        .map(|(&a, &b)| (a, b))
        .collect();
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in pairs {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        None
    } else {
        Some(sxy / (sxx.sqrt() * syy.sqrt()))
    }
}

/// Mean and sample standard deviation of a slice (no NaN handling) —
/// the "RMSE (± bias)" aggregation used in the paper's tables.
pub fn mean_and_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAN: f64 = f64::NAN;

    #[test]
    fn nan_mean_skips_missing() {
        assert_eq!(nan_mean(&[1.0, NAN, 3.0]), Some(2.0));
        assert_eq!(nan_mean(&[NAN, NAN]), None);
        assert_eq!(nan_mean(&[]), None);
    }

    #[test]
    fn nan_var_and_std() {
        let v = [2.0, 4.0, NAN, 4.0, 4.0, 5.0, 5.0, NAN, 7.0, 9.0];
        // classic example: population var of 2,4,4,4,5,5,7,9 is 4
        assert!((nan_var(&v).unwrap() - 4.0).abs() < 1e-12);
        assert!((nan_std(&v).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_survives_nan_heavy_input() {
        // regression guard for the comparator sweep: the quantile sort no
        // longer trusts the NaN pre-filter (partial_cmp().expect()), so a
        // NaN-heavy slice — or a future refactor that drops the filter —
        // cannot panic the sort
        let v = [NAN, 3.0, NAN, 1.0, NAN, 2.0, NAN];
        assert_eq!(quantile(&v, 0.5), Some(2.0));
        assert_eq!(quantile(&[NAN, NAN], 0.5), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(nan_median(&[5.0, NAN, 1.0, 3.0]), Some(3.0));
    }

    #[test]
    fn min_max_ignores_nan() {
        assert_eq!(nan_min_max(&[NAN, 2.0, -1.0, NAN]), Some((-1.0, 2.0)));
        assert_eq!(nan_min_max(&[NAN]), None);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((nan_pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yneg = [-2.0, -4.0, -6.0, -8.0];
        assert!((nan_pearson(&x, &yneg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_skips_nan_pairs() {
        let x = [1.0, 2.0, NAN, 4.0, 100.0];
        let y = [2.0, 4.0, 6.0, 8.0, NAN];
        // Only (1,2),(2,4),(4,8) pairs survive → perfectly correlated.
        assert!((nan_pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_none() {
        assert_eq!(nan_pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(nan_pearson(&[NAN, 1.0], &[1.0, NAN]), None);
    }

    #[test]
    fn mean_and_std_basic() {
        let (m, s) = mean_and_std(&[1.0, 2.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_and_std(&[]), (0.0, 0.0));
        assert_eq!(mean_and_std(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn col_nan_means_with_fallback() {
        let m = Matrix::from_rows(&[&[1.0, NAN], &[3.0, NAN]]);
        assert_eq!(col_nan_means(&m, 0.5), vec![2.0, 0.5]);
    }
}
