//! Deterministic pseudo-random number generation.
//!
//! A self-contained xoshiro256++ generator seeded through SplitMix64. Every
//! stochastic component in the workspace (missingness injection, mini-batch
//! shuffling, weight init, SSE parameter sampling) draws from an explicitly
//! passed [`Rng64`], so a run is fully determined by its seed — a requirement
//! for reproducing the paper's tables under `--seed`.

/// xoshiro256++ PRNG with convenience samplers.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

/// Exported stream position of an [`Rng64`], sufficient to resume the
/// generator bit-exactly (xoshiro state plus the Box–Muller spare, which is
/// part of the observable output stream).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RngState {
    /// xoshiro256++ state words.
    pub s: [u64; 4],
    /// Cached second Box–Muller output, if one is pending.
    pub spare_normal: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`, exactly unbiased.
    ///
    /// Full Lemire multiply-shift with the rejection step (Lemire 2019,
    /// "Fast Random Integer Generation in an Interval"): the widening
    /// product maps `2^64` raw outputs onto `n` buckets, and the low
    /// 64 bits identify the `2^64 mod n` overhanging outputs that must be
    /// redrawn to keep every bucket the same size. A redraw occurs with
    /// probability `< n / 2^64`, so for the small `n` used throughout this
    /// workspace the rejection loop virtually never fires and seeded
    /// streams are unchanged from the earlier rejection-free variant
    /// (see DESIGN.md §11).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range: empty range");
        let n64 = n as u64;
        let mut m = (self.next_u64() as u128) * (n64 as u128);
        if (m as u64) < n64 {
            // threshold = (2^64 - n) mod n, computed without 128-bit division
            let threshold = n64.wrapping_neg() % n64;
            while (m as u64) < threshold {
                m = (self.next_u64() as u128) * (n64 as u128);
            }
        }
        (m >> 64) as usize
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0,1] to avoid ln(0)
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Fills `slice` with i.i.d. `U[lo, hi)` draws.
    pub fn fill_uniform(&mut self, slice: &mut [f64], lo: f64, hi: f64) {
        for v in slice {
            *v = self.uniform_range(lo, hi);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i + 1);
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// Samples `k` distinct indices from `0..n` (first `k` of a permutation
    /// for `k` close to `n`, Floyd's algorithm otherwise).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={} > n={}", k, n);
        if k * 3 >= n {
            let mut p = self.permutation(n);
            p.truncate(k);
            p
        } else {
            // Floyd's algorithm: O(k) expected draws, then shuffle for a
            // uniformly random *order* as well as set.
            let mut chosen = std::collections::HashSet::with_capacity(k);
            let mut out = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = self.gen_range(j + 1);
                if chosen.insert(t) {
                    out.push(t);
                } else {
                    chosen.insert(j);
                    out.push(j);
                }
            }
            self.shuffle(&mut out);
            out
        }
    }

    /// Forks a statistically independent child generator (for per-thread or
    /// per-component streams).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from_u64(self.next_u64())
    }

    /// Snapshots the full stream position (for checkpointing).
    pub fn state(&self) -> RngState {
        RngState {
            s: self.s,
            spare_normal: self.spare_normal,
        }
    }

    /// Restores a generator from a snapshot taken via [`Rng64::state`];
    /// the restored generator continues the stream bit-exactly.
    pub fn from_state(state: RngState) -> Self {
        Self {
            s: state.s,
            spare_normal: state.spare_normal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval_with_sane_mean() {
        let mut rng = Rng64::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {}", mean);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::seed_from_u64(11);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.03, "var {}", var);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.gen_range(7) < 7);
        }
        // every residue reachable
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_small_n_stream_matches_rejection_free_map() {
        // For small n the Lemire rejection step fires with probability
        // < n/2^64, so the stream must coincide with the plain widening
        // multiply of the raw outputs — this pins the seeded streams that
        // every other test in the workspace depends on.
        let mut raw = Rng64::seed_from_u64(123);
        let mut gen = Rng64::seed_from_u64(123);
        for &n in &[2usize, 7, 100, 1000, 1 << 20] {
            for _ in 0..200 {
                let expect = (((raw.next_u64() as u128) * (n as u128)) >> 64) as usize;
                assert_eq!(gen.gen_range(n), expect, "stream diverged at n={}", n);
            }
        }
    }

    #[test]
    fn gen_range_huge_n_in_bounds() {
        // n close to 2^63: the rejection branch is actually reachable here;
        // outputs must still land in [0, n).
        let n = (1usize << 63) + 12345;
        let mut rng = Rng64::seed_from_u64(17);
        for _ in 0..10_000 {
            assert!(rng.gen_range(n) < n);
        }
    }

    #[test]
    fn gen_range_is_unbiased_over_residues() {
        // With true rejection every residue class is hit exactly
        // uniformly in expectation; check a coarse chi-square-ish bound.
        let n = 3;
        let mut rng = Rng64::seed_from_u64(29);
        let mut hits = [0usize; 3];
        let draws = 30_000;
        for _ in 0..draws {
            hits[rng.gen_range(n)] += 1;
        }
        for (r, &h) in hits.iter().enumerate() {
            let frac = h as f64 / draws as f64;
            assert!(
                (frac - 1.0 / 3.0).abs() < 0.02,
                "residue {} frequency {}",
                r,
                frac
            );
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(5);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng64::seed_from_u64(9);
        for &(n, k) in &[(100usize, 5usize), (100, 90), (10, 10), (1000, 2)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates for n={} k={}", n, k);
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng64::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {}", rate);
    }

    #[test]
    fn state_roundtrip_continues_stream_bit_exactly() {
        let mut rng = Rng64::seed_from_u64(99);
        // Draw a normal so the Box–Muller spare is pending, then snapshot.
        let _ = rng.normal();
        let snap = rng.state();
        let mut restored = Rng64::from_state(snap);
        for _ in 0..64 {
            assert_eq!(
                rng.normal().to_bits(),
                restored.normal().to_bits(),
                "restored stream diverged"
            );
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng64::seed_from_u64(1);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }
}
