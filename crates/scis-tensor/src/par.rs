//! Scoped-thread parallel kernels.
//!
//! The library is single-threaded by default (determinism first — the
//! experiment harness measures per-method times), but the two biggest
//! dense kernels have drop-in parallel variants for users who want
//! wall-clock speed on large tables: rows are partitioned across
//! `std::thread::scope` workers, so results are bit-identical to the
//! serial kernels (each output row is produced by exactly one worker from
//! read-only inputs).

use crate::matrix::Matrix;
use crate::ops::sq_dist;

/// Number of worker threads used by the parallel kernels: the machine's
/// available parallelism, capped to keep memory-bandwidth contention sane.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Parallel `A · B` over row blocks of `A`. Bit-identical to
/// [`crate::ops::matmul`].
pub fn matmul_par(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_par: inner dimension mismatch {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, n) = (a.rows(), b.cols());
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m < 64 {
        return crate::ops::matmul(a, b);
    }
    let mut out = Matrix::zeros(m, n);
    let chunk = m.div_ceil(threads);
    let out_slice = out.as_mut_slice();
    std::thread::scope(|scope| {
        for (block_idx, out_block) in out_slice.chunks_mut(chunk * n).enumerate() {
            let row0 = block_idx * chunk;
            scope.spawn(move || {
                for (local_i, orow) in out_block.chunks_mut(n).enumerate() {
                    let arow = a.row(row0 + local_i);
                    for (p, &av) in arow.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let brow = b.row(p);
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
            });
        }
    });
    out
}

/// Parallel all-pairs squared distances over row blocks of `a`.
/// Bit-identical to [`crate::ops::pairwise_sq_dists`].
pub fn pairwise_sq_dists_par(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "pairwise_sq_dists_par: feature dim mismatch"
    );
    let (m, n) = (a.rows(), b.rows());
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m < 64 {
        return crate::ops::pairwise_sq_dists(a, b);
    }
    let mut out = Matrix::zeros(m, n);
    let chunk = m.div_ceil(threads);
    let out_slice = out.as_mut_slice();
    std::thread::scope(|scope| {
        for (block_idx, out_block) in out_slice.chunks_mut(chunk * n).enumerate() {
            let row0 = block_idx * chunk;
            scope.spawn(move || {
                for (local_i, orow) in out_block.chunks_mut(n).enumerate() {
                    let arow = a.row(row0 + local_i);
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = sq_dist(arow, b.row(j));
                    }
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, pairwise_sq_dists};
    use crate::rng::Rng64;

    #[test]
    fn matmul_par_matches_serial_bit_exactly() {
        let mut rng = Rng64::seed_from_u64(1);
        let a = Matrix::from_fn(130, 17, |_, _| rng.normal());
        let b = Matrix::from_fn(17, 23, |_, _| rng.normal());
        for threads in [1, 2, 3, 8] {
            let par = matmul_par(&a, &b, threads);
            assert_eq!(par, matmul(&a, &b), "threads = {}", threads);
        }
    }

    #[test]
    fn pairwise_par_matches_serial_bit_exactly() {
        let mut rng = Rng64::seed_from_u64(2);
        let a = Matrix::from_fn(100, 6, |_, _| rng.uniform());
        let b = Matrix::from_fn(70, 6, |_, _| rng.uniform());
        for threads in [1, 2, 5] {
            let par = pairwise_sq_dists_par(&a, &b, threads);
            assert_eq!(par, pairwise_sq_dists(&a, &b), "threads = {}", threads);
        }
    }

    #[test]
    fn small_inputs_fall_back_to_serial() {
        let a = Matrix::ones(4, 4);
        let b = Matrix::eye(4);
        assert_eq!(matmul_par(&a, &b, 8), a);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let mut rng = Rng64::seed_from_u64(3);
        let a = Matrix::from_fn(65, 3, |_, _| rng.normal());
        let b = Matrix::from_fn(3, 3, |_, _| rng.normal());
        let got = matmul_par(&a, &b, 1000);
        assert_eq!(got, matmul(&a, &b));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
