//! Scoped-thread parallel kernels.
//!
//! The serial kernels in [`crate::ops`] stay the reference implementation;
//! every kernel here is a drop-in parallel variant that partitions *output
//! rows* across `std::thread::scope` workers. The GEMM wrappers hand each
//! worker a contiguous **row span** and run the same blocked span kernel the
//! serial entry point uses — every output element's accumulation chain lives
//! entirely inside its own row, so any partition is bit-identical to the
//! serial call.
//!
//! The `*_exec` entry points take an [`ExecPolicy`] and additionally apply a
//! work threshold: small products fall back to the serial kernel so that
//! per-batch NN matmuls do not pay thread-spawn overhead. Thread-count
//! resolution order: explicit policy (`Serial`/`Threads(n)`) > `SCIS_THREADS`
//! env var > [`std::thread::available_parallelism`].
//!
//! The `*_exec_p` variants additionally take a [`Precision`]: under
//! [`Precision::F32`] the operands are rounded to `f32` storage once and the
//! same span kernels run over the converted buffers (accumulators stay
//! `f64`), which keeps the across-thread bit-equality contract *within* a
//! precision mode.

use crate::exec::{for_each_row, for_row_spans, ExecPolicy};
use crate::fastmath::Precision;
use crate::matrix::Matrix;
use crate::ops::{gemm_nn_span, gemm_nt_span, gemm_tn_span, sq_dist, to_f32_vec};

/// Minimum number of inner-loop scalar operations (`m · k · n` for GEMM,
/// `m · n · d` for pairwise distances) before a kernel goes parallel.
/// Below this the thread-spawn cost dominates any speedup.
pub const PAR_MIN_WORK: usize = 1 << 19;

/// Number of worker threads used when a policy is [`ExecPolicy::Auto`].
/// Delegates to [`crate::exec::auto_threads`]: a strictly-valid positive
/// `SCIS_THREADS` wins, anything degenerate falls back to the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    crate::exec::auto_threads()
}

/// Policy- and precision-aware `A · B`. Under [`Precision::F64`] this is
/// bit-identical to [`crate::ops::matmul`] at any thread count; under
/// [`Precision::F32`] it is bit-identical to [`crate::ops::matmul_f32`].
pub fn matmul_exec_p(a: &Matrix, b: &Matrix, policy: ExecPolicy, precision: Precision) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_exec: inner dimension mismatch {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let threads = if n == 0 || m * k * n < PAR_MIN_WORK {
        1
    } else {
        policy.workers(m)
    };
    let mut out = Matrix::zeros(m, n);
    match precision {
        Precision::F64 => {
            for_row_spans(out.as_mut_slice(), n.max(1), threads, |r0, span| {
                gemm_nn_span(a.as_slice(), k, b.as_slice(), n, r0, span);
            });
        }
        Precision::F32 => {
            let (af, bf) = (to_f32_vec(a), to_f32_vec(b));
            for_row_spans(out.as_mut_slice(), n.max(1), threads, |r0, span| {
                gemm_nn_span(&af, k, &bf, n, r0, span);
            });
        }
    }
    out
}

/// Policy-aware `A · B`. Bit-identical to [`crate::ops::matmul`]; goes
/// parallel over row spans of `A` when the policy allows more than one
/// worker and the product is large enough to amortize thread spawns.
pub fn matmul_exec(a: &Matrix, b: &Matrix, policy: ExecPolicy) -> Matrix {
    matmul_exec_p(a, b, policy, Precision::F64)
}

/// Policy- and precision-aware `A · Bᵀ`.
pub fn matmul_bt_exec_p(
    a: &Matrix,
    b: &Matrix,
    policy: ExecPolicy,
    precision: Precision,
) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt_exec: inner dimension mismatch {:?} · {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let threads = if n == 0 || m * k * n < PAR_MIN_WORK {
        1
    } else {
        policy.workers(m)
    };
    let mut out = Matrix::zeros(m, n);
    match precision {
        Precision::F64 => {
            for_row_spans(out.as_mut_slice(), n.max(1), threads, |r0, span| {
                gemm_nt_span(a.as_slice(), k, b.as_slice(), n, r0, span);
            });
        }
        Precision::F32 => {
            let (af, bf) = (to_f32_vec(a), to_f32_vec(b));
            for_row_spans(out.as_mut_slice(), n.max(1), threads, |r0, span| {
                gemm_nt_span(&af, k, &bf, n, r0, span);
            });
        }
    }
    out
}

/// Policy-aware `A · Bᵀ`. Bit-identical to [`crate::ops::matmul_bt`].
pub fn matmul_bt_exec(a: &Matrix, b: &Matrix, policy: ExecPolicy) -> Matrix {
    matmul_bt_exec_p(a, b, policy, Precision::F64)
}

/// Policy- and precision-aware `Aᵀ · B`.
pub fn matmul_at_exec_p(
    a: &Matrix,
    b: &Matrix,
    policy: ExecPolicy,
    precision: Precision,
) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_exec: inner dimension mismatch {:?}ᵀ · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let threads = if n == 0 || m * k * n < PAR_MIN_WORK {
        1
    } else {
        policy.workers(m)
    };
    let mut out = Matrix::zeros(m, n);
    match precision {
        Precision::F64 => {
            for_row_spans(out.as_mut_slice(), n.max(1), threads, |r0, span| {
                gemm_tn_span(a.as_slice(), m, b.as_slice(), n, k, r0, span);
            });
        }
        Precision::F32 => {
            let (af, bf) = (to_f32_vec(a), to_f32_vec(b));
            for_row_spans(out.as_mut_slice(), n.max(1), threads, |r0, span| {
                gemm_tn_span(&af, m, &bf, n, k, r0, span);
            });
        }
    }
    out
}

/// Policy-aware `Aᵀ · B`. Bit-identical to [`crate::ops::matmul_at`]:
/// output row `i` accumulates `a[(p, i)] · b.row(p)` over `p` in ascending
/// order, exactly as the serial kernel does for that row.
pub fn matmul_at_exec(a: &Matrix, b: &Matrix, policy: ExecPolicy) -> Matrix {
    matmul_at_exec_p(a, b, policy, Precision::F64)
}

/// Policy-aware all-pairs squared distances. Bit-identical to
/// [`crate::ops::pairwise_sq_dists`].
pub fn pairwise_sq_dists_exec(a: &Matrix, b: &Matrix, policy: ExecPolicy) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "pairwise_sq_dists_exec: feature dim mismatch"
    );
    let (m, n, d) = (a.rows(), b.rows(), a.cols());
    if n == 0 || m * n * d.max(1) < PAR_MIN_WORK {
        return crate::ops::pairwise_sq_dists(a, b);
    }
    let threads = policy.workers(m);
    if threads == 1 {
        return crate::ops::pairwise_sq_dists(a, b);
    }
    let mut out = Matrix::zeros(m, n);
    for_each_row(out.as_mut_slice(), n, threads, |i, orow| {
        let arow = a.row(i);
        for (j, o) in orow.iter_mut().enumerate() {
            *o = sq_dist(arow, b.row(j));
        }
    });
    out
}

/// Parallel `A · B` over row spans of `A` with an explicit thread count.
/// Bit-identical to [`crate::ops::matmul`].
pub fn matmul_par(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_par: inner dimension mismatch {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m < 64 || n == 0 {
        return crate::ops::matmul(a, b);
    }
    let mut out = Matrix::zeros(m, n);
    for_row_spans(out.as_mut_slice(), n, threads, |r0, span| {
        gemm_nn_span(a.as_slice(), k, b.as_slice(), n, r0, span);
    });
    out
}

/// Parallel all-pairs squared distances over row blocks of `a` with an
/// explicit thread count. Bit-identical to
/// [`crate::ops::pairwise_sq_dists`].
pub fn pairwise_sq_dists_par(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "pairwise_sq_dists_par: feature dim mismatch"
    );
    let (m, n) = (a.rows(), b.rows());
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m < 64 || n == 0 {
        return crate::ops::pairwise_sq_dists(a, b);
    }
    let mut out = Matrix::zeros(m, n);
    for_each_row(out.as_mut_slice(), n, threads, |i, orow| {
        let arow = a.row(i);
        for (j, o) in orow.iter_mut().enumerate() {
            *o = sq_dist(arow, b.row(j));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{
        matmul, matmul_at, matmul_at_f32, matmul_bt, matmul_bt_f32, matmul_f32, pairwise_sq_dists,
    };
    use crate::rng::Rng64;

    #[test]
    fn matmul_par_matches_serial_bit_exactly() {
        let mut rng = Rng64::seed_from_u64(1);
        let a = Matrix::from_fn(130, 17, |_, _| rng.normal());
        let b = Matrix::from_fn(17, 23, |_, _| rng.normal());
        for threads in [1, 2, 3, 8] {
            let par = matmul_par(&a, &b, threads);
            assert_eq!(par, matmul(&a, &b), "threads = {}", threads);
        }
    }

    #[test]
    fn pairwise_par_matches_serial_bit_exactly() {
        let mut rng = Rng64::seed_from_u64(2);
        let a = Matrix::from_fn(100, 6, |_, _| rng.uniform());
        let b = Matrix::from_fn(70, 6, |_, _| rng.uniform());
        for threads in [1, 2, 5] {
            let par = pairwise_sq_dists_par(&a, &b, threads);
            assert_eq!(par, pairwise_sq_dists(&a, &b), "threads = {}", threads);
        }
    }

    #[test]
    fn exec_kernels_match_serial_bit_exactly_above_threshold() {
        let mut rng = Rng64::seed_from_u64(7);
        // 128 * 96 * 128 = 1.5M > PAR_MIN_WORK, so the parallel path runs.
        let a = Matrix::from_fn(128, 96, |_, _| rng.normal());
        let b = Matrix::from_fn(96, 128, |_, _| rng.normal());
        for policy in [
            ExecPolicy::Serial,
            ExecPolicy::threads(2),
            ExecPolicy::threads(5),
            ExecPolicy::Auto,
        ] {
            assert_eq!(matmul_exec(&a, &b, policy), matmul(&a, &b), "{:?}", policy);
        }
        let c = Matrix::from_fn(128, 96, |_, _| rng.normal());
        for policy in [ExecPolicy::threads(3), ExecPolicy::Auto] {
            assert_eq!(
                matmul_bt_exec(&a, &c, policy),
                matmul_bt(&a, &c),
                "{:?}",
                policy
            );
            assert_eq!(
                matmul_at_exec(&a, &b.transpose(), policy),
                matmul_at(&a, &b.transpose()),
                "{:?}",
                policy
            );
            assert_eq!(
                pairwise_sq_dists_exec(&a, &c, policy),
                pairwise_sq_dists(&a, &c),
                "{:?}",
                policy
            );
        }
    }

    #[test]
    fn f32_exec_kernels_match_serial_f32_bit_exactly() {
        // The f32 compute mode obeys the same contract as the default path:
        // within the mode, thread count never changes a bit.
        let mut rng = Rng64::seed_from_u64(9);
        let a = Matrix::from_fn(128, 96, |_, _| rng.normal());
        let b = Matrix::from_fn(96, 128, |_, _| rng.normal());
        let c = Matrix::from_fn(128, 96, |_, _| rng.normal());
        for policy in [ExecPolicy::Serial, ExecPolicy::threads(3)] {
            assert_eq!(
                matmul_exec_p(&a, &b, policy, Precision::F32),
                matmul_f32(&a, &b),
                "{:?}",
                policy
            );
            assert_eq!(
                matmul_bt_exec_p(&a, &c, policy, Precision::F32),
                matmul_bt_f32(&a, &c),
                "{:?}",
                policy
            );
            assert_eq!(
                matmul_at_exec_p(&a, &b.transpose(), policy, Precision::F32),
                matmul_at_f32(&a, &b.transpose()),
                "{:?}",
                policy
            );
        }
    }

    #[test]
    fn exec_kernels_fall_back_to_serial_below_threshold() {
        let mut rng = Rng64::seed_from_u64(8);
        let a = Matrix::from_fn(12, 7, |_, _| rng.normal());
        let b = Matrix::from_fn(7, 9, |_, _| rng.normal());
        assert_eq!(matmul_exec(&a, &b, ExecPolicy::threads(8)), matmul(&a, &b));
        assert_eq!(
            pairwise_sq_dists_exec(&a, &a, ExecPolicy::threads(8)),
            pairwise_sq_dists(&a, &a)
        );
    }

    #[test]
    fn small_inputs_fall_back_to_serial() {
        let a = Matrix::ones(4, 4);
        let b = Matrix::eye(4);
        assert_eq!(matmul_par(&a, &b, 8), a);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let mut rng = Rng64::seed_from_u64(3);
        let a = Matrix::from_fn(65, 3, |_, _| rng.normal());
        let b = Matrix::from_fn(3, 3, |_, _| rng.normal());
        let got = matmul_par(&a, &b, 1000);
        assert_eq!(got, matmul(&a, &b));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
