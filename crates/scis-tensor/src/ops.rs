//! Matrix multiplication kernels and pairwise-distance helpers.
//!
//! The hot loops of the reproduction are (a) GEMM inside the neural nets and
//! (b) pairwise squared distances inside Sinkhorn cost matrices and kNN. Both
//! live here. The GEMM uses the classic `ikj` loop order so the innermost
//! loop streams both operands contiguously, which the compiler can
//! auto-vectorize; a transposed-B variant covers the backward passes without
//! materializing transposes.

use crate::matrix::Matrix;

/// `A · B` for `A: m x k`, `B: k x n`.
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimension mismatch {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue; // masks and dropout produce many structural zeros
            }
            let brow = b.row(p);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
        let _ = k;
    }
    out
}

/// `A · Bᵀ` for `A: m x k`, `B: n x k`, without materializing `Bᵀ`.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt: inner dimension mismatch {:?} · {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, n) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot(arow, b.row(j));
        }
    }
    out
}

/// Inner product with four independent accumulators. The single-accumulator
/// loop serializes every add behind the previous one; splitting the chain
/// lets the CPU overlap the multiplies, which is what makes the decomposed
/// Gram-based cost kernel faster than the subtract-square loop it replaces.
/// The accumulation order is fixed (lanes then tail), so results are
/// bit-identical for any thread count.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut lanes = [0.0f64; 4];
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let xr = xc.remainder();
    let yr = yc.remainder();
    for (cx, cy) in xc.zip(yc) {
        lanes[0] += cx[0] * cy[0];
        lanes[1] += cx[1] * cy[1];
        lanes[2] += cx[2] * cy[2];
        lanes[3] += cx[3] * cy[3];
    }
    let mut tail = 0.0;
    for (&a, &b) in xr.iter().zip(yr) {
        tail += a * b;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// `Aᵀ · B` for `A: k x m`, `B: k x n`, without materializing `Aᵀ`.
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at: inner dimension mismatch {:?}ᵀ · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, n) = (a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for p in 0..a.rows() {
        let arow = a.row(p);
        let brow = b.row(p);
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = out.row_mut(i);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    let _ = (m, n);
    out
}

/// Matrix-vector product `A · v`.
pub fn matvec(a: &Matrix, v: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), v.len(), "matvec: dimension mismatch");
    a.rows_iter()
        .map(|row| row.iter().zip(v).map(|(&x, &y)| x * y).sum())
        .collect()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let d = a - b;
        acc += d * d;
    }
    acc
}

/// All-pairs squared distances: `D[i][j] = ||a_i - b_j||²` for row sets
/// `a: m x d`, `b: n x d`.
pub fn pairwise_sq_dists(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "pairwise_sq_dists: feature dim mismatch"
    );
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            *o = sq_dist(arow, b.row(j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 3 + j) as f64);
        assert!(approx_eq(&matmul(&a, &Matrix::eye(4)), &a, 1e-12));
        assert!(approx_eq(&matmul(&Matrix::eye(4), &a), &a, 1e-12));
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64 - 0.3 * j as f64).sin());
        let b = Matrix::from_fn(4, 5, |i, j| (0.7 * i as f64 + j as f64).cos());
        assert!(approx_eq(
            &matmul_bt(&a, &b),
            &matmul(&a, &b.transpose()),
            1e-12
        ));

        let c = Matrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64 * 0.1);
        let d = Matrix::from_fn(5, 4, |i, j| (2 * i + j) as f64 * 0.2);
        assert!(approx_eq(
            &matmul_at(&c, &d),
            &matmul(&c.transpose(), &d),
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
        let v = vec![1.0, -1.0, 2.0, 0.5];
        let got = matvec(&a, &v);
        let vm = Matrix::from_vec(4, 1, v);
        let want = matmul(&a, &vm);
        for (g, w) in got.iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn pairwise_distances_are_symmetric_with_zero_diag() {
        let x = Matrix::from_fn(5, 3, |i, j| ((i * 7 + j * 13) % 11) as f64);
        let d = pairwise_sq_dists(&x, &x);
        for i in 0..5 {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..5 {
                assert_eq!(d[(i, j)], d[(j, i)]);
                assert!(d[(i, j)] >= 0.0);
            }
        }
    }

    #[test]
    fn sq_dist_simple() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
