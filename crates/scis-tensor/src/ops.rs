//! Matrix multiplication kernels and pairwise-distance helpers.
//!
//! The hot loops of the reproduction are (a) GEMM inside the neural nets and
//! (b) pairwise squared distances inside Sinkhorn cost matrices and kNN. Both
//! live here. The GEMM kernels are register-tiled: a 4×4 (or 1×4) block of
//! the output is held in explicit scalar accumulators across the full inner
//! dimension, so the CPU overlaps multiplies across independent chains and
//! the compiler can keep the tile in vector registers.
//!
//! # Determinism rules (load-bearing — see DESIGN.md §16)
//!
//! Every output element is produced by **one accumulator chain in ascending
//! inner-index order** (for [`matmul`]/[`matmul_at`]) or by the fixed 4-lane
//! pattern of [`dot`] (for [`matmul_bt`]). Tiling only changes *which
//! elements are in flight together*, never the order of adds within an
//! element, so the blocked kernels are bit-identical to the naive reference
//! loops ([`matmul_naive`] and friends) and to any row partition of
//! themselves — which is what lets the parallel wrappers in [`crate::par`]
//! promise bit-equality at every thread count.
//!
//! There is deliberately **no zero-skip** in any kernel: the historical
//! `if av == 0.0 { continue; }` fast path silently dropped `0.0 × NaN` and
//! `0.0 × inf` contributions, letting non-finite activations survive a
//! backward pass undetected. Skipping a `±0.0 × finite` product is a bitwise
//! no-op anyway (an accumulator seeded at `+0.0` can never become `-0.0`
//! through adds), so removing the skip changed no finite result.
//!
//! The kernels are generic over the storage scalar: `f64` (default path) or
//! `f32` (opt-in compute mode, operands rounded once and widened back per
//! multiply — accumulators are always `f64`; see [`crate::fastmath`]).

use crate::matrix::Matrix;

/// Storage scalar of a GEMM operand: `f64` (default) or `f32` (accel mode).
/// Accumulation is always `f64` via [`Scalar::w`].
pub trait Scalar: Copy + Send + Sync {
    /// Widens the stored value to the `f64` accumulator domain.
    fn w(self) -> f64;
}

impl Scalar for f64 {
    #[inline(always)]
    fn w(self) -> f64 {
        self
    }
}

impl Scalar for f32 {
    #[inline(always)]
    fn w(self) -> f64 {
        self as f64
    }
}

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile.
const NR: usize = 4;

/// Rounds a matrix to `f32` storage for the opt-in compute mode.
pub fn to_f32_vec(m: &Matrix) -> Vec<f32> {
    m.as_slice().iter().map(|&v| v as f32).collect()
}

/// Writes rows `[r0, r0 + out.len()/n)` of `A · B` into `out` (`A: m×k`
/// row-major in `a`, `B: k×n` row-major in `b`; `out` is pre-zeroed).
///
/// Each output element is one `f64` accumulator filled in ascending-`p`
/// order, so any row partition of this kernel is bit-identical to the
/// full-range call.
pub(crate) fn gemm_nn_span<T: Scalar>(
    a: &[T],
    k: usize,
    b: &[T],
    n: usize,
    r0: usize,
    out: &mut [f64],
) {
    if n == 0 {
        return;
    }
    let rs = out.len() / n;
    let mut ib = 0;
    // 4×4 register tiles: 16 accumulators per tile, full-k inner loop.
    while ib + MR <= rs {
        let a0 = &a[(r0 + ib) * k..][..k];
        let a1 = &a[(r0 + ib + 1) * k..][..k];
        let a2 = &a[(r0 + ib + 2) * k..][..k];
        let a3 = &a[(r0 + ib + 3) * k..][..k];
        let mut jb = 0;
        while jb + NR <= n {
            let mut c = [[0.0f64; NR]; MR];
            for p in 0..k {
                let bb = &b[p * n + jb..][..NR];
                let (b0, b1, b2, b3) = (bb[0].w(), bb[1].w(), bb[2].w(), bb[3].w());
                let av = [a0[p].w(), a1[p].w(), a2[p].w(), a3[p].w()];
                for (ci, &ai) in c.iter_mut().zip(av.iter()) {
                    ci[0] += ai * b0;
                    ci[1] += ai * b1;
                    ci[2] += ai * b2;
                    ci[3] += ai * b3;
                }
            }
            for (ii, ci) in c.iter().enumerate() {
                out[(ib + ii) * n + jb..][..NR].copy_from_slice(ci);
            }
            jb += NR;
        }
        // column tail: 4 rows × 1 column, still ascending-p per element
        for j in jb..n {
            let mut c = [0.0f64; MR];
            for p in 0..k {
                let bv = b[p * n + j].w();
                c[0] += a0[p].w() * bv;
                c[1] += a1[p].w() * bv;
                c[2] += a2[p].w() * bv;
                c[3] += a3[p].w() * bv;
            }
            for (ii, &cv) in c.iter().enumerate() {
                out[(ib + ii) * n + j] = cv;
            }
        }
        ib += MR;
    }
    // row tail: classic ikj so the inner loop streams both operands
    for i in ib..rs {
        let arow = &a[(r0 + i) * k..][..k];
        let orow = &mut out[i * n..][..n];
        for (p, &apv) in arow.iter().enumerate() {
            let av = apv.w();
            let brow = &b[p * n..][..n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv.w();
            }
        }
    }
}

/// Writes rows `[r0, r0 + out.len()/n)` of `A · Bᵀ` into `out` (`A: m×k`,
/// `B: n×k`, both row-major; `out` pre-zeroed).
///
/// Every output element uses exactly the 4-lane + tail pattern of [`dot`],
/// so the tiled kernel is bit-identical to calling `dot` per element.
pub(crate) fn gemm_nt_span<T: Scalar>(
    a: &[T],
    k: usize,
    b: &[T],
    n: usize,
    r0: usize,
    out: &mut [f64],
) {
    if n == 0 {
        return;
    }
    let rs = out.len() / n;
    let kc = (k / 4) * 4;
    for i in 0..rs {
        let arow = &a[(r0 + i) * k..][..k];
        let orow = &mut out[i * n..][..n];
        let mut jb = 0;
        // 1×4 tiles: four dot products share each strip of A-row loads.
        while jb + NR <= n {
            let b0 = &b[jb * k..][..k];
            let b1 = &b[(jb + 1) * k..][..k];
            let b2 = &b[(jb + 2) * k..][..k];
            let b3 = &b[(jb + 3) * k..][..k];
            let mut lanes = [[0.0f64; 4]; NR];
            let mut p = 0;
            while p < kc {
                let aw = [
                    arow[p].w(),
                    arow[p + 1].w(),
                    arow[p + 2].w(),
                    arow[p + 3].w(),
                ];
                for (le, br) in lanes.iter_mut().zip([b0, b1, b2, b3]) {
                    le[0] += aw[0] * br[p].w();
                    le[1] += aw[1] * br[p + 1].w();
                    le[2] += aw[2] * br[p + 2].w();
                    le[3] += aw[3] * br[p + 3].w();
                }
                p += 4;
            }
            let mut tails = [0.0f64; NR];
            for q in kc..k {
                let aq = arow[q].w();
                tails[0] += aq * b0[q].w();
                tails[1] += aq * b1[q].w();
                tails[2] += aq * b2[q].w();
                tails[3] += aq * b3[q].w();
            }
            for (e, (le, &t)) in lanes.iter().zip(tails.iter()).enumerate() {
                orow[jb + e] = (le[0] + le[1]) + (le[2] + le[3]) + t;
            }
            jb += NR;
        }
        for (j, o) in orow.iter_mut().enumerate().skip(jb) {
            *o = dot_wide(arow, &b[j * k..][..k]);
        }
    }
}

/// Writes rows `[r0, r0 + out.len()/n)` of `Aᵀ · B` into `out` (`A: k×m`,
/// `B: k×n`, both row-major; output is `m×n`; `out` pre-zeroed; `am` is the
/// column count of `A`, i.e. the full output row count `m`).
///
/// Each output element is one `f64` accumulator filled in ascending-`p`
/// order — the same chain as the historical `p`-outer serial loop, minus
/// the NaN-masking zero-skip.
pub(crate) fn gemm_tn_span<T: Scalar>(
    a: &[T],
    am: usize,
    b: &[T],
    n: usize,
    k: usize,
    r0: usize,
    out: &mut [f64],
) {
    if n == 0 {
        return;
    }
    let rs = out.len() / n;
    let mut ib = 0;
    while ib + MR <= rs {
        let i0 = r0 + ib;
        let mut jb = 0;
        while jb + NR <= n {
            let mut c = [[0.0f64; NR]; MR];
            for p in 0..k {
                let av = &a[p * am + i0..][..MR];
                let bb = &b[p * n + jb..][..NR];
                let (b0, b1, b2, b3) = (bb[0].w(), bb[1].w(), bb[2].w(), bb[3].w());
                for (ci, &ai) in c.iter_mut().zip(av.iter()) {
                    let aw = ai.w();
                    ci[0] += aw * b0;
                    ci[1] += aw * b1;
                    ci[2] += aw * b2;
                    ci[3] += aw * b3;
                }
            }
            for (ii, ci) in c.iter().enumerate() {
                out[(ib + ii) * n + jb..][..NR].copy_from_slice(ci);
            }
            jb += NR;
        }
        for j in jb..n {
            let mut c = [0.0f64; MR];
            for p in 0..k {
                let av = &a[p * am + i0..][..MR];
                let bv = b[p * n + j].w();
                c[0] += av[0].w() * bv;
                c[1] += av[1].w() * bv;
                c[2] += av[2].w() * bv;
                c[3] += av[3].w() * bv;
            }
            for (ii, &cv) in c.iter().enumerate() {
                out[(ib + ii) * n + j] = cv;
            }
        }
        ib += MR;
    }
    for i in ib..rs {
        let ia = r0 + i;
        let orow = &mut out[i * n..][..n];
        for p in 0..k {
            let av = a[p * am + ia].w();
            let brow = &b[p * n..][..n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv.w();
            }
        }
    }
}

/// `A · B` for `A: m x k`, `B: k x n` (register-tiled).
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimension mismatch {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    gemm_nn_span(a.as_slice(), k, b.as_slice(), n, 0, out.as_mut_slice());
    out
}

/// `A · B` with `f32` operand storage and `f64` accumulation (accel mode).
pub fn matmul_f32(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_f32: inner dimension mismatch {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (af, bf) = (to_f32_vec(a), to_f32_vec(b));
    let mut out = Matrix::zeros(m, n);
    gemm_nn_span(&af, k, &bf, n, 0, out.as_mut_slice());
    out
}

/// Naive reference `A · B`: the plain `ikj` loop nest, one accumulator per
/// element in ascending-`p` order. Kept as the bit-exact oracle the blocked
/// kernel is tested against.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_naive: inner dimension mismatch {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, n) = (a.rows(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate() {
            let brow = b.row(p);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `A · Bᵀ` for `A: m x k`, `B: n x k`, without materializing `Bᵀ`
/// (register-tiled; per element identical to [`dot`]).
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt: inner dimension mismatch {:?} · {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    gemm_nt_span(a.as_slice(), k, b.as_slice(), n, 0, out.as_mut_slice());
    out
}

/// `A · Bᵀ` with `f32` operand storage and `f64` accumulation (accel mode).
pub fn matmul_bt_f32(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt_f32: inner dimension mismatch {:?} · {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let (af, bf) = (to_f32_vec(a), to_f32_vec(b));
    let mut out = Matrix::zeros(m, n);
    gemm_nt_span(&af, k, &bf, n, 0, out.as_mut_slice());
    out
}

/// Naive reference `A · Bᵀ`: [`dot`] per output element, no tiling.
pub fn matmul_bt_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt_naive: inner dimension mismatch {:?} · {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, n) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot(arow, b.row(j));
        }
    }
    out
}

/// Inner product with four independent accumulators. The single-accumulator
/// loop serializes every add behind the previous one; splitting the chain
/// lets the CPU overlap the multiplies, which is what makes the decomposed
/// Gram-based cost kernel faster than the subtract-square loop it replaces.
/// The accumulation order is fixed (lanes then tail), so results are
/// bit-identical for any thread count.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    dot_wide(x, y)
}

/// [`dot`], generic over the storage scalar (accumulation stays `f64` with
/// the identical lane-then-tail combine order).
#[inline]
pub(crate) fn dot_wide<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut lanes = [0.0f64; 4];
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let xr = xc.remainder();
    let yr = yc.remainder();
    for (cx, cy) in xc.zip(yc) {
        lanes[0] += cx[0].w() * cy[0].w();
        lanes[1] += cx[1].w() * cy[1].w();
        lanes[2] += cx[2].w() * cy[2].w();
        lanes[3] += cx[3].w() * cy[3].w();
    }
    let mut tail = 0.0;
    for (&a, &b) in xr.iter().zip(yr) {
        tail += a.w() * b.w();
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// `Aᵀ · B` for `A: k x m`, `B: k x n`, without materializing `Aᵀ`
/// (register-tiled).
///
/// Unlike the historical kernel, zero entries of `A` are *not* skipped, so
/// `0 × NaN` / `0 × inf` correctly poison the output instead of being
/// silently dropped (the PR 1 NaN-guard contract).
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at: inner dimension mismatch {:?}ᵀ · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let mut out = Matrix::zeros(m, n);
    gemm_tn_span(a.as_slice(), m, b.as_slice(), n, k, 0, out.as_mut_slice());
    out
}

/// `Aᵀ · B` with `f32` operand storage and `f64` accumulation (accel mode).
pub fn matmul_at_f32(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_f32: inner dimension mismatch {:?}ᵀ · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let (af, bf) = (to_f32_vec(a), to_f32_vec(b));
    let mut out = Matrix::zeros(m, n);
    gemm_tn_span(&af, m, &bf, n, k, 0, out.as_mut_slice());
    out
}

/// Naive reference `Aᵀ · B`: the plain `p`-outer loop nest, one accumulator
/// per element in ascending-`p` order, no zero-skip.
pub fn matmul_at_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_naive: inner dimension mismatch {:?}ᵀ · {:?}",
        a.shape(),
        b.shape()
    );
    let (m, n) = (a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for p in 0..a.rows() {
        let arow = a.row(p);
        let brow = b.row(p);
        for (i, &av) in arow.iter().enumerate() {
            let orow = out.row_mut(i);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    let _ = (m, n);
    out
}

/// Matrix-vector product `A · v`.
pub fn matvec(a: &Matrix, v: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), v.len(), "matvec: dimension mismatch");
    a.rows_iter()
        .map(|row| row.iter().zip(v).map(|(&x, &y)| x * y).sum())
        .collect()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let d = a - b;
        acc += d * d;
    }
    acc
}

/// All-pairs squared distances: `D[i][j] = ||a_i - b_j||²` for row sets
/// `a: m x d`, `b: n x d`.
pub fn pairwise_sq_dists(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "pairwise_sq_dists: feature dim mismatch"
    );
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            *o = sq_dist(arow, b.row(j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 3 + j) as f64);
        assert!(approx_eq(&matmul(&a, &Matrix::eye(4)), &a, 1e-12));
        assert!(approx_eq(&matmul(&Matrix::eye(4), &a), &a, 1e-12));
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64 - 0.3 * j as f64).sin());
        let b = Matrix::from_fn(4, 5, |i, j| (0.7 * i as f64 + j as f64).cos());
        assert!(approx_eq(
            &matmul_bt(&a, &b),
            &matmul(&a, &b.transpose()),
            1e-12
        ));

        let c = Matrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64 * 0.1);
        let d = Matrix::from_fn(5, 4, |i, j| (2 * i + j) as f64 * 0.2);
        assert!(approx_eq(
            &matmul_at(&c, &d),
            &matmul(&c.transpose(), &d),
            1e-12
        ));
    }

    #[test]
    fn blocked_kernels_match_naive_bit_exactly() {
        // Sweep shapes around the 4×4 tile boundaries so every tail path
        // (row tail, column tail, dot remainder) is exercised.
        let mut rng = Rng64::seed_from_u64(51);
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (4, 4, 4),
            (5, 4, 9),
            (7, 13, 6),
            (8, 16, 12),
            (13, 3, 17),
            (33, 31, 29),
        ] {
            let a = Matrix::from_fn(m, k, |_, _| rng.normal());
            let b = Matrix::from_fn(k, n, |_, _| rng.normal());
            assert_eq!(matmul(&a, &b), matmul_naive(&a, &b), "matmul {m}x{k}x{n}");
            let bt = Matrix::from_fn(n, k, |_, _| rng.normal());
            assert_eq!(
                matmul_bt(&a, &bt),
                matmul_bt_naive(&a, &bt),
                "matmul_bt {m}x{k}x{n}"
            );
            let at = Matrix::from_fn(k, m, |_, _| rng.normal());
            let bn = Matrix::from_fn(k, n, |_, _| rng.normal());
            assert_eq!(
                matmul_at(&at, &bn),
                matmul_at_naive(&at, &bn),
                "matmul_at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn kernels_propagate_nan_through_zero_operands() {
        // The historical zero-skip dropped 0·NaN contributions; the blocked
        // kernels must poison the affected outputs instead.
        let mut a = Matrix::zeros(3, 4);
        a[(1, 2)] = 0.0; // explicit zero against the NaN row of B
        a[(0, 0)] = 1.0;
        let mut b = Matrix::from_fn(4, 3, |i, j| (i + j) as f64);
        b[(2, 1)] = f64::NAN;
        let c = matmul(&a, &b);
        // every output in column 1 touches B[2][1] via some a[i][2] (all 0.0)
        for i in 0..3 {
            assert!(c[(i, 1)].is_nan(), "row {i} lost the 0·NaN poison");
        }
        assert!(c[(0, 0)].is_finite());

        // matmul_at: NaN in B against an all-zero column of A
        let at = Matrix::zeros(4, 3);
        let mut bn = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        bn[(1, 0)] = f64::INFINITY;
        let cat = matmul_at(&at, &bn);
        for i in 0..3 {
            assert!(cat[(i, 0)].is_nan(), "0·inf must produce NaN, row {i}");
        }

        // matmul_bt goes through dot(), which never skipped zeros — pin it
        let za = Matrix::zeros(2, 5);
        let mut zb = Matrix::from_fn(3, 5, |_, _| 1.0);
        zb[(1, 4)] = f64::NAN;
        let cbt = matmul_bt(&za, &zb);
        assert!(cbt[(0, 1)].is_nan());
        assert!(cbt[(0, 0)] == 0.0);
    }

    #[test]
    fn f32_kernels_match_f64_within_operand_rounding() {
        let mut rng = Rng64::seed_from_u64(52);
        let a = Matrix::from_fn(9, 14, |_, _| rng.normal());
        let b = Matrix::from_fn(14, 7, |_, _| rng.normal());
        let want = matmul(&a, &b);
        let got = matmul_f32(&a, &b);
        assert!(approx_eq(&want, &got, 1e-4), "matmul_f32 drifted");
        let bt = Matrix::from_fn(7, 14, |_, _| rng.normal());
        assert!(approx_eq(
            &matmul_bt(&a, &bt),
            &matmul_bt_f32(&a, &bt),
            1e-4
        ));
        let at = Matrix::from_fn(14, 9, |_, _| rng.normal());
        assert!(approx_eq(
            &matmul_at(&at, &b),
            &matmul_at_f32(&at, &b),
            1e-4
        ));
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        assert_eq!(matmul(&a, &b), Matrix::zeros(2, 4));
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 0);
        assert_eq!(matmul(&a, &b).shape(), (2, 0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
        let v = vec![1.0, -1.0, 2.0, 0.5];
        let got = matvec(&a, &v);
        let vm = Matrix::from_vec(4, 1, v);
        let want = matmul(&a, &vm);
        for (g, w) in got.iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn pairwise_distances_are_symmetric_with_zero_diag() {
        let x = Matrix::from_fn(5, 3, |i, j| ((i * 7 + j * 13) % 11) as f64);
        let d = pairwise_sq_dists(&x, &x);
        for i in 0..5 {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..5 {
                assert_eq!(d[(i, j)], d[(j, i)]);
                assert!(d[(i, j)] >= 0.0);
            }
        }
    }

    #[test]
    fn sq_dist_simple() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
