//! Dependency-free run telemetry: spans, monotonic counters, and timing
//! aggregates for the SCIS pipeline.
//!
//! The design goals, in order:
//!
//! 1. **Zero cost when disabled.** [`Telemetry::off`] carries no allocation
//!    and every record method reduces to a single `Option` branch — safe to
//!    call on per-batch and per-solve hot paths.
//! 2. **Determinism-neutral.** Recording never touches the RNG, never
//!    reorders floating-point work, and counter totals are policy-independent:
//!    the deterministic execution engine (DESIGN.md §10) runs the *same*
//!    logical events in serial and threaded modes, and atomic addition is
//!    commutative, so a serial run and a `threads(4)` run report identical
//!    counter values. Only wall-clock spans differ.
//! 3. **Shared by clone.** [`Telemetry`] is a cheap handle over an
//!    `Arc`-shared slab of atomics; cloning it (e.g. into the per-worker
//!    model clones of the SSE Monte-Carlo fan-out) merges all counts into
//!    one collector.
//!
//! Consumers record through fixed [`Counter`] and [`SpanKind`] slots — no
//! string keys, no maps, no per-event allocation.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Monotonic event counters, one fixed slot each.
///
/// Counter totals are part of the determinism contract: for a fixed seed and
/// configuration they must not depend on [`ExecPolicy`][exec] (thread count),
/// because every counted event happens at the same logical program point in
/// serial and parallel schedules.
///
/// [exec]: https://docs.rs/scis-tensor
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Sinkhorn solves attempted through the escalating entry points.
    SinkhornSolves,
    /// Total Sinkhorn sweep iterations across all solves.
    SinkhornIterations,
    /// Solves whose final attempt met the convergence tolerance.
    SinkhornConverged,
    /// ε-scaling escalation retries triggered by unconverged solves.
    SinkhornEscalations,
    /// Solves still unconverged after the full escalation ladder.
    SinkhornUnconverged,
    /// DIM training epochs completed (accepted or rolled back).
    DimEpochs,
    /// DIM mini-batches whose gradient step was applied.
    DimBatches,
    /// DIM mini-batches skipped by the numeric guards (NaN trips).
    DimBatchesSkipped,
    /// `TrainingGuard` epoch rollbacks to the best snapshot.
    GuardRollbacks,
    /// `TrainingGuard` learning-rate backoffs after a rollback.
    GuardLrBackoffs,
    /// SSE binary-search probes (distinct `n` values evaluated).
    SseProbes,
    /// SSE Monte-Carlo distance evaluations (`k` per probe).
    SseMcEvals,
    /// Neural-network forward passes.
    NnForwards,
    /// Neural-network backward passes.
    NnBackwards,
    /// Sinkhorn solves warm-started from the dual cache.
    WarmStartHits,
    /// Estimated Sinkhorn sweeps avoided by warm-starting (vs the most
    /// recent comparable cold solve; an estimate, not a measurement).
    ItersSaved,
}

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; 16] = [
        Counter::SinkhornSolves,
        Counter::SinkhornIterations,
        Counter::SinkhornConverged,
        Counter::SinkhornEscalations,
        Counter::SinkhornUnconverged,
        Counter::DimEpochs,
        Counter::DimBatches,
        Counter::DimBatchesSkipped,
        Counter::GuardRollbacks,
        Counter::GuardLrBackoffs,
        Counter::SseProbes,
        Counter::SseMcEvals,
        Counter::NnForwards,
        Counter::NnBackwards,
        Counter::WarmStartHits,
        Counter::ItersSaved,
    ];

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SinkhornSolves => "sinkhorn_solves",
            Counter::SinkhornIterations => "sinkhorn_iterations",
            Counter::SinkhornConverged => "sinkhorn_converged",
            Counter::SinkhornEscalations => "sinkhorn_escalations",
            Counter::SinkhornUnconverged => "sinkhorn_unconverged",
            Counter::DimEpochs => "dim_epochs",
            Counter::DimBatches => "dim_batches",
            Counter::DimBatchesSkipped => "dim_batches_skipped",
            Counter::GuardRollbacks => "guard_rollbacks",
            Counter::GuardLrBackoffs => "guard_lr_backoffs",
            Counter::SseProbes => "sse_probes",
            Counter::SseMcEvals => "sse_mc_evals",
            Counter::NnForwards => "nn_forwards",
            Counter::NnBackwards => "nn_backwards",
            Counter::WarmStartHits => "warm_start_hits",
            Counter::ItersSaved => "iters_saved",
        }
    }
}

/// Timed pipeline phases (the span taxonomy, DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SpanKind {
    /// Input validation and the initial/validation split.
    Validate,
    /// Initial DIM training of `M0` on `n0` rows (Algorithm 1 line 2).
    TrainInitial,
    /// SSE sibling-calibration training and reference distance.
    Calibration,
    /// SSE binary search for `n*` (Monte-Carlo probes).
    Sse,
    /// Retraining on `n*` rows when `n* > n0`.
    Retrain,
    /// Final generator sweep `X̂ = M⊙X + (1−M)⊙X̄`.
    Impute,
}

impl SpanKind {
    /// Every span kind, in slot order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Validate,
        SpanKind::TrainInitial,
        SpanKind::Calibration,
        SpanKind::Sse,
        SpanKind::Retrain,
        SpanKind::Impute,
    ];

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Validate => "validate",
            SpanKind::TrainInitial => "train_initial",
            SpanKind::Calibration => "calibration",
            SpanKind::Sse => "sse",
            SpanKind::Retrain => "retrain",
            SpanKind::Impute => "impute",
        }
    }
}

const N_COUNTERS: usize = Counter::ALL.len();
const N_SPANS: usize = SpanKind::ALL.len();

#[derive(Debug)]
struct Inner {
    counters: [AtomicU64; N_COUNTERS],
    span_nanos: [AtomicU64; N_SPANS],
    span_counts: [AtomicU64; N_SPANS],
}

/// A cheap, cloneable telemetry handle.
///
/// [`Telemetry::off`] (the default) is a `None` handle: every record method
/// is a no-op branch with no allocation, no atomics touched. A
/// [`Telemetry::collecting`] handle shares one `Arc` slab of atomics across
/// all clones, so counts from worker-thread model clones merge automatically.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl Telemetry {
    /// A disabled collector: all recording is a no-op, zero allocation.
    pub fn off() -> Self {
        Telemetry(None)
    }

    /// A live collector (one allocation, here, never on record paths).
    pub fn collecting() -> Self {
        Telemetry(Some(Arc::new(Inner {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            span_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            span_counts: std::array::from_fn(|_| AtomicU64::new(0)),
        })))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to a counter slot (relaxed; totals are order-independent).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.0 {
            inner.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments a counter slot by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Current value of a counter (0 when disabled).
    pub fn counter(&self, c: Counter) -> u64 {
        match &self.0 {
            Some(inner) => inner.counters[c as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Adds one timed observation of `kind`.
    pub fn record_span(&self, kind: SpanKind, elapsed: Duration) {
        if let Some(inner) = &self.0 {
            inner.span_nanos[kind as usize].fetch_add(
                elapsed.as_nanos().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
            inner.span_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a span; the elapsed time is recorded when the guard drops.
    /// When disabled the guard holds no clock and drop is a no-op.
    pub fn span(&self, kind: SpanKind) -> SpanGuard<'_> {
        SpanGuard {
            tel: self,
            kind,
            start: self.0.as_ref().map(|_| Instant::now()),
        }
    }

    /// Accumulated seconds spent in `kind` (0 when disabled).
    pub fn span_secs(&self, kind: SpanKind) -> f64 {
        match &self.0 {
            Some(inner) => inner.span_nanos[kind as usize].load(Ordering::Relaxed) as f64 * 1e-9,
            None => 0.0,
        }
    }

    /// Number of observations of `kind` (0 when disabled).
    pub fn span_count(&self, kind: SpanKind) -> u64 {
        match &self.0 {
            Some(inner) => inner.span_counts[kind as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// A point-in-time copy of all counters and span aggregates.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: Counter::ALL.map(|c| self.counter(c)),
            spans: SpanKind::ALL.map(|k| SpanStat {
                count: self.span_count(k),
                secs: self.span_secs(k),
            }),
        }
    }
}

/// RAII span timer returned by [`Telemetry::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tel: &'a Telemetry,
    kind: SpanKind,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.tel.record_span(self.kind, start.elapsed());
        }
    }
}

/// Aggregate for one span kind inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of timed observations.
    pub count: u64,
    /// Total seconds across observations.
    pub secs: f64,
}

/// Point-in-time copy of a collector, indexable by [`Counter`] / [`SpanKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    counters: [u64; N_COUNTERS],
    spans: [SpanStat; N_SPANS],
}

impl Snapshot {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Aggregate of one span kind.
    pub fn span(&self, k: SpanKind) -> SpanStat {
        self.spans[k as usize]
    }

    /// Iterates `(name, value)` over all counters, in slot order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL
            .iter()
            .map(move |&c| (c.name(), self.counter(c)))
    }

    /// Iterates `(name, stat)` over all span kinds, in slot order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, SpanStat)> + '_ {
        SpanKind::ALL.iter().map(move |&k| (k.name(), self.span(k)))
    }

    /// Whether every counter is zero and no span was observed (the shape of
    /// a snapshot taken from a disabled collector).
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&v| v == 0) && self.spans.iter().all(|s| s.count == 0)
    }

    /// Counter values only — the policy-independent, bit-comparable part of
    /// a snapshot (timings excluded by construction).
    pub fn counter_values(&self) -> [u64; N_COUNTERS] {
        self.counters
    }
}

/// Escapes a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{}", v)
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        t.incr(Counter::DimBatches);
        t.add(Counter::SinkhornIterations, 100);
        t.record_span(SpanKind::Sse, Duration::from_secs(1));
        drop(t.span(SpanKind::Impute));
        assert_eq!(t.counter(Counter::DimBatches), 0);
        assert_eq!(t.span_count(SpanKind::Sse), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn collecting_accumulates() {
        let t = Telemetry::collecting();
        assert!(t.is_enabled());
        t.incr(Counter::DimEpochs);
        t.add(Counter::SinkhornIterations, 41);
        t.incr(Counter::SinkhornIterations);
        assert_eq!(t.counter(Counter::DimEpochs), 1);
        assert_eq!(t.counter(Counter::SinkhornIterations), 42);
        let snap = t.snapshot();
        assert_eq!(snap.counter(Counter::SinkhornIterations), 42);
        assert!(!snap.is_empty());
    }

    #[test]
    fn clones_share_one_slab() {
        let t = Telemetry::collecting();
        let workers: Vec<Telemetry> = (0..4).map(|_| t.clone()).collect();
        std::thread::scope(|scope| {
            for w in &workers {
                scope.spawn(move || {
                    for _ in 0..1000 {
                        w.incr(Counter::NnForwards);
                    }
                });
            }
        });
        assert_eq!(t.counter(Counter::NnForwards), 4000);
    }

    #[test]
    fn span_guard_times_once() {
        let t = Telemetry::collecting();
        {
            let _g = t.span(SpanKind::TrainInitial);
            std::hint::black_box(0u64);
        }
        assert_eq!(t.span_count(SpanKind::TrainInitial), 1);
        assert!(t.span_secs(SpanKind::TrainInitial) >= 0.0);
    }

    #[test]
    fn snapshot_counters_are_ordered_and_named() {
        let t = Telemetry::collecting();
        t.add(Counter::SseProbes, 7);
        let snap = t.snapshot();
        let pairs: Vec<_> = snap.counters().collect();
        assert_eq!(pairs.len(), Counter::ALL.len());
        assert!(pairs.contains(&("sse_probes", 7)));
        // names are unique
        let mut names: Vec<_> = pairs.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn json_helpers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
