//! Dependency-free run telemetry: spans, monotonic counters, and timing
//! aggregates for the SCIS pipeline.
//!
//! The design goals, in order:
//!
//! 1. **Zero cost when disabled.** [`Telemetry::off`] carries no allocation
//!    and every record method reduces to a single `Option` branch — safe to
//!    call on per-batch and per-solve hot paths.
//! 2. **Determinism-neutral.** Recording never touches the RNG, never
//!    reorders floating-point work, and counter totals are policy-independent:
//!    the deterministic execution engine (DESIGN.md §10) runs the *same*
//!    logical events in serial and threaded modes, and atomic addition is
//!    commutative, so a serial run and a `threads(4)` run report identical
//!    counter values. Only wall-clock spans differ.
//! 3. **Shared by clone.** [`Telemetry`] is a cheap handle over an
//!    `Arc`-shared slab of atomics; cloning it (e.g. into the per-worker
//!    model clones of the SSE Monte-Carlo fan-out) merges all counts into
//!    one collector.
//!
//! Consumers record through fixed [`Counter`] and [`SpanKind`] slots — no
//! string keys, no maps, no per-event allocation.
//!
//! On top of the counter/span slab, the **flight recorder** (DESIGN.md §13)
//! adds three primitives with the same off-is-free contract:
//!
//! - [`Series`]: fixed-slot per-epoch value series (loss curves, grad norms,
//!   warm-start hit rates). Values are `f64` and part of the determinism
//!   contract — bit-identical across [`ExecPolicy`][exec] for a fixed seed.
//! - [`Event`]: a typed event stream captured in a bounded in-memory ring
//!   ([`FLIGHT_RECORDER_CAP`] entries, monotonic sequence numbers so
//!   truncation is detectable) and serializable as JSONL. The tail of the
//!   ring ships with failures as a post-mortem.
//! - [`Hist`]: power-of-two bucket histograms over `AtomicU64` slabs for
//!   per-solve Sinkhorn iterations and step/epoch latencies. Iteration
//!   histograms are deterministic; time histograms are explicitly not.
//!
//! [exec]: https://docs.rs/scis-tensor

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Monotonic event counters, one fixed slot each.
///
/// Counter totals are part of the determinism contract: for a fixed seed and
/// configuration they must not depend on [`ExecPolicy`][exec] (thread count),
/// because every counted event happens at the same logical program point in
/// serial and parallel schedules.
///
/// [exec]: https://docs.rs/scis-tensor
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Sinkhorn solves attempted through the escalating entry points.
    SinkhornSolves,
    /// Total Sinkhorn sweep iterations across all solves.
    SinkhornIterations,
    /// Solves whose final attempt met the convergence tolerance.
    SinkhornConverged,
    /// ε-scaling escalation retries triggered by unconverged solves.
    SinkhornEscalations,
    /// Solves still unconverged after the full escalation ladder.
    SinkhornUnconverged,
    /// DIM training epochs completed (accepted or rolled back).
    DimEpochs,
    /// DIM mini-batches whose gradient step was applied.
    DimBatches,
    /// DIM mini-batches skipped by the numeric guards (NaN trips).
    DimBatchesSkipped,
    /// `TrainingGuard` epoch rollbacks to the best snapshot.
    GuardRollbacks,
    /// `TrainingGuard` learning-rate backoffs after a rollback.
    GuardLrBackoffs,
    /// SSE binary-search probes (distinct `n` values evaluated).
    SseProbes,
    /// SSE Monte-Carlo distance evaluations (`k` per probe).
    SseMcEvals,
    /// Neural-network forward passes.
    NnForwards,
    /// Neural-network backward passes.
    NnBackwards,
    /// Sinkhorn solves warm-started from the dual cache.
    WarmStartHits,
    /// Estimated Sinkhorn sweeps avoided by warm-starting (vs the most
    /// recent comparable cold solve; an estimate, not a measurement).
    ItersSaved,
    /// Training checkpoints successfully written to disk.
    CheckpointsWritten,
    /// Checkpoint writes that failed (training continues regardless).
    CheckpointFailures,
    /// Imputation requests accepted by the serving layer (`/impute`).
    ServeRequests,
    /// Data rows imputed by the serving layer across all requests.
    ServeRows,
    /// Coalesced generator forward batches executed by the serve batcher.
    ServeBatches,
    /// Requests rejected with 503 backpressure (bounded queue full).
    ServeRejected,
    /// Requests that failed with a client or server error (4xx/5xx other
    /// than backpressure 503s, which have their own counter).
    ServeErrors,
    /// Requests answered by the column-mean degradation ladder instead of
    /// the generator (non-finite generator output).
    ServeDegraded,
    /// Flight-recorder events overwritten by the bounded ring (oldest
    /// history truncated). Deterministic: events fire at fixed logical
    /// program points, so the overflow count is policy-independent too.
    EventsDropped,
}

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; 25] = [
        Counter::SinkhornSolves,
        Counter::SinkhornIterations,
        Counter::SinkhornConverged,
        Counter::SinkhornEscalations,
        Counter::SinkhornUnconverged,
        Counter::DimEpochs,
        Counter::DimBatches,
        Counter::DimBatchesSkipped,
        Counter::GuardRollbacks,
        Counter::GuardLrBackoffs,
        Counter::SseProbes,
        Counter::SseMcEvals,
        Counter::NnForwards,
        Counter::NnBackwards,
        Counter::WarmStartHits,
        Counter::ItersSaved,
        Counter::CheckpointsWritten,
        Counter::CheckpointFailures,
        Counter::ServeRequests,
        Counter::ServeRows,
        Counter::ServeBatches,
        Counter::ServeRejected,
        Counter::ServeErrors,
        Counter::ServeDegraded,
        Counter::EventsDropped,
    ];

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SinkhornSolves => "sinkhorn_solves",
            Counter::SinkhornIterations => "sinkhorn_iterations",
            Counter::SinkhornConverged => "sinkhorn_converged",
            Counter::SinkhornEscalations => "sinkhorn_escalations",
            Counter::SinkhornUnconverged => "sinkhorn_unconverged",
            Counter::DimEpochs => "dim_epochs",
            Counter::DimBatches => "dim_batches",
            Counter::DimBatchesSkipped => "dim_batches_skipped",
            Counter::GuardRollbacks => "guard_rollbacks",
            Counter::GuardLrBackoffs => "guard_lr_backoffs",
            Counter::SseProbes => "sse_probes",
            Counter::SseMcEvals => "sse_mc_evals",
            Counter::NnForwards => "nn_forwards",
            Counter::NnBackwards => "nn_backwards",
            Counter::WarmStartHits => "warm_start_hits",
            Counter::ItersSaved => "iters_saved",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::CheckpointFailures => "checkpoint_failures",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeRows => "serve_rows",
            Counter::ServeBatches => "serve_batches",
            Counter::ServeRejected => "serve_rejected",
            Counter::ServeErrors => "serve_errors",
            Counter::ServeDegraded => "serve_degraded",
            Counter::EventsDropped => "events_dropped",
        }
    }
}

/// Timed pipeline phases (the span taxonomy, DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SpanKind {
    /// Input validation and the initial/validation split.
    Validate,
    /// Initial DIM training of `M0` on `n0` rows (Algorithm 1 line 2).
    TrainInitial,
    /// SSE sibling-calibration training and reference distance.
    Calibration,
    /// SSE binary search for `n*` (Monte-Carlo probes).
    Sse,
    /// Retraining on `n*` rows when `n* > n0`.
    Retrain,
    /// Final generator sweep `X̂ = M⊙X + (1−M)⊙X̄`.
    Impute,
}

impl SpanKind {
    /// Every span kind, in slot order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Validate,
        SpanKind::TrainInitial,
        SpanKind::Calibration,
        SpanKind::Sse,
        SpanKind::Retrain,
        SpanKind::Impute,
    ];

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Validate => "validate",
            SpanKind::TrainInitial => "train_initial",
            SpanKind::Calibration => "calibration",
            SpanKind::Sse => "sse",
            SpanKind::Retrain => "retrain",
            SpanKind::Impute => "impute",
        }
    }
}

/// Fixed-slot per-epoch metric series (the flight recorder's value log).
///
/// One `f64` is appended per *attempted* DIM epoch (rolled-back attempts
/// included, flagged by [`Series::RollbackFlag`]) for the training slots, and
/// per binary-search probe for the SSE slots. All series values are part of
/// the determinism contract: bit-identical across thread counts for a fixed
/// seed and configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Series {
    /// Mean DIM loss (MS divergence + anchor MSE) over applied batches.
    DimLoss,
    /// Mean generator gradient norm over applied batches.
    GradNorm,
    /// Learning rate in effect for the epoch (tracks guard backoffs).
    LearningRate,
    /// Total Sinkhorn sweep iterations spent in the epoch.
    SinkhornIters,
    /// Warm-start hit rate for the epoch: warm solves / total solves.
    WarmStartHitRate,
    /// Estimated Sinkhorn sweeps saved by warm starts in the epoch.
    ItersSaved,
    /// 1.0 when the epoch was rolled back by the guard, else 0.0.
    RollbackFlag,
    /// 1.0 when the rollback also triggered a learning-rate backoff.
    LrBackoffFlag,
    /// Training phase code: 0 = initial, 1 = calibration, 2 = retrain.
    TrainPhase,
    /// SSE binary-search probe size `n` (one entry per probe).
    SseProbeN,
    /// SSE acceptance probability estimate at the probe.
    SseProbeProb,
}

impl Series {
    /// Every series, in slot order.
    pub const ALL: [Series; 11] = [
        Series::DimLoss,
        Series::GradNorm,
        Series::LearningRate,
        Series::SinkhornIters,
        Series::WarmStartHitRate,
        Series::ItersSaved,
        Series::RollbackFlag,
        Series::LrBackoffFlag,
        Series::TrainPhase,
        Series::SseProbeN,
        Series::SseProbeProb,
    ];

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Series::DimLoss => "dim_loss",
            Series::GradNorm => "grad_norm",
            Series::LearningRate => "learning_rate",
            Series::SinkhornIters => "sinkhorn_iters",
            Series::WarmStartHitRate => "warm_start_hit_rate",
            Series::ItersSaved => "iters_saved",
            Series::RollbackFlag => "rollback_flag",
            Series::LrBackoffFlag => "lr_backoff_flag",
            Series::TrainPhase => "train_phase",
            Series::SseProbeN => "sse_probe_n",
            Series::SseProbeProb => "sse_probe_prob",
        }
    }
}

/// Power-of-two bucket histograms, one fixed `AtomicU64` slab each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Hist {
    /// Sweep iterations of each individual Sinkhorn solve. Deterministic:
    /// bucket counts are bit-identical across thread counts.
    SinkhornSolveIters,
    /// Wall time of each applied DIM batch step, in nanoseconds. Timing —
    /// excluded from the determinism contract.
    BatchStepNanos,
    /// Wall time of each attempted DIM epoch, in nanoseconds. Timing —
    /// excluded from the determinism contract.
    EpochWallNanos,
    /// End-to-end wall time of each served impute request (enqueue to
    /// response ready), in nanoseconds. Timing — excluded from the
    /// determinism contract.
    ServeRequestNanos,
    /// Rows per coalesced generator batch in the serve batcher. Depends on
    /// request arrival timing — excluded from the determinism contract.
    ServeBatchRows,
}

impl Hist {
    /// Every histogram, in slot order.
    pub const ALL: [Hist; 5] = [
        Hist::SinkhornSolveIters,
        Hist::BatchStepNanos,
        Hist::EpochWallNanos,
        Hist::ServeRequestNanos,
        Hist::ServeBatchRows,
    ];

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SinkhornSolveIters => "sinkhorn_solve_iters",
            Hist::BatchStepNanos => "batch_step_nanos",
            Hist::EpochWallNanos => "epoch_wall_nanos",
            Hist::ServeRequestNanos => "serve_request_nanos",
            Hist::ServeBatchRows => "serve_batch_rows",
        }
    }

    /// Whether this histogram's bucket counts are part of the determinism
    /// contract (value-flow histograms yes, wall-clock histograms no).
    pub fn is_deterministic(self) -> bool {
        matches!(self, Hist::SinkhornSolveIters)
    }
}

/// A typed flight-recorder event. `Copy`, no owned strings — recording one
/// never allocates (the ring buffer is preallocated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A pipeline phase span opened.
    PhaseStart {
        /// The phase being timed.
        phase: SpanKind,
    },
    /// A pipeline phase span closed.
    PhaseEnd {
        /// The phase being timed.
        phase: SpanKind,
        /// Elapsed wall-clock seconds (not part of the determinism contract).
        secs: f64,
    },
    /// A DIM training epoch finished (accepted or rolled back).
    EpochEnd {
        /// Training phase: "initial", "calibration", or "retrain".
        phase: &'static str,
        /// Zero-based epoch index within the phase.
        epoch: u32,
        /// Mean loss over applied batches (NaN if no batch applied).
        loss: f64,
        /// Mean generator gradient norm over applied batches.
        grad_norm: f64,
        /// Learning rate in effect.
        lr: f64,
        /// Total Sinkhorn sweep iterations in the epoch.
        sinkhorn_iters: u64,
        /// Warm-start hit rate over the epoch's solves.
        warm_hit_rate: f64,
    },
    /// The numeric guards skipped a poisoned mini-batch.
    BatchSkipped {
        /// Zero-based epoch index.
        epoch: u32,
        /// Zero-based batch index within the epoch.
        batch: u32,
    },
    /// The training guard rolled the model back to the best snapshot.
    Rollback {
        /// Zero-based epoch index that was rejected.
        epoch: u32,
        /// Rollback retries consumed so far (this one included).
        retries: u32,
    },
    /// A rollback also backed off the learning rate.
    LrBackoff {
        /// Zero-based epoch index that triggered the backoff.
        epoch: u32,
        /// The new (reduced) learning rate.
        lr: f64,
    },
    /// Unconverged Sinkhorn solves escalated through ε-scaling.
    SinkhornEscalation {
        /// Escalation retries in the batch that triggered the event.
        count: u64,
    },
    /// The warm-start dual cache was invalidated (guard rollback).
    CacheInvalidation,
    /// One SSE binary-search probe was evaluated.
    SseProbe {
        /// Probe sample size `n`.
        n: u64,
        /// Estimated acceptance probability at `n`.
        prob: f64,
        /// Whether the probe met the acceptance threshold.
        accepted: bool,
    },
    /// The pipeline degraded instead of failing (e.g. mean-imputation
    /// fallback). `reason` is a static slug.
    Degraded {
        /// Static reason slug, e.g. `"mean_fallback"`.
        reason: &'static str,
    },
    /// The run deadline expired; the pipeline is winding down gracefully
    /// with the best-so-far model. Recorded at most once per run.
    DeadlineHit {
        /// Training phase active when the deadline tripped ("initial",
        /// "calibration", "retrain"), or "sse"/"pipeline" outside training.
        phase: &'static str,
        /// Zero-based epoch index reached in that phase (0 outside training).
        epoch: u32,
    },
    /// A training checkpoint was written to disk.
    Checkpoint {
        /// Training phase the checkpoint belongs to.
        phase: &'static str,
        /// Next epoch to run when resuming from this checkpoint.
        epoch: u32,
        /// Whether this was an emergency checkpoint (training failure or
        /// deadline expiry) rather than a periodic one.
        emergency: bool,
    },
}

impl Event {
    /// Stable snake_case type tag used in the JSONL stream.
    pub fn type_name(self) -> &'static str {
        match self {
            Event::PhaseStart { .. } => "phase_start",
            Event::PhaseEnd { .. } => "phase_end",
            Event::EpochEnd { .. } => "epoch_end",
            Event::BatchSkipped { .. } => "batch_skipped",
            Event::Rollback { .. } => "rollback",
            Event::LrBackoff { .. } => "lr_backoff",
            Event::SinkhornEscalation { .. } => "sinkhorn_escalation",
            Event::CacheInvalidation => "cache_invalidation",
            Event::SseProbe { .. } => "sse_probe",
            Event::Degraded { .. } => "degraded",
            Event::DeadlineHit { .. } => "deadline_hit",
            Event::Checkpoint { .. } => "checkpoint",
        }
    }
}

/// An [`Event`] with its monotonic sequence number. Gaps in `seq` across a
/// dumped stream mean the ring buffer wrapped (events were dropped).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedEvent {
    /// Monotonic per-collector sequence number, starting at 0.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

impl RecordedEvent {
    /// One JSONL line (no trailing newline): `{"seq":N,"type":...,...}`.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"type\":\"{}\"",
            self.seq,
            self.event.type_name()
        );
        match self.event {
            Event::PhaseStart { phase } => {
                s.push_str(&format!(",\"phase\":\"{}\"", phase.name()));
            }
            Event::PhaseEnd { phase, secs } => {
                s.push_str(&format!(
                    ",\"phase\":\"{}\",\"secs\":{}",
                    phase.name(),
                    json_f64(secs)
                ));
            }
            Event::EpochEnd {
                phase,
                epoch,
                loss,
                grad_norm,
                lr,
                sinkhorn_iters,
                warm_hit_rate,
            } => {
                s.push_str(&format!(
                    ",\"phase\":\"{}\",\"epoch\":{},\"loss\":{},\"grad_norm\":{},\"lr\":{},\"sinkhorn_iters\":{},\"warm_hit_rate\":{}",
                    json_escape(phase),
                    epoch,
                    json_f64(loss),
                    json_f64(grad_norm),
                    json_f64(lr),
                    sinkhorn_iters,
                    json_f64(warm_hit_rate)
                ));
            }
            Event::BatchSkipped { epoch, batch } => {
                s.push_str(&format!(",\"epoch\":{},\"batch\":{}", epoch, batch));
            }
            Event::Rollback { epoch, retries } => {
                s.push_str(&format!(",\"epoch\":{},\"retries\":{}", epoch, retries));
            }
            Event::LrBackoff { epoch, lr } => {
                s.push_str(&format!(",\"epoch\":{},\"lr\":{}", epoch, json_f64(lr)));
            }
            Event::SinkhornEscalation { count } => {
                s.push_str(&format!(",\"count\":{}", count));
            }
            Event::CacheInvalidation => {}
            Event::SseProbe { n, prob, accepted } => {
                s.push_str(&format!(
                    ",\"n\":{},\"prob\":{},\"accepted\":{}",
                    n,
                    json_f64(prob),
                    accepted
                ));
            }
            Event::Degraded { reason } => {
                s.push_str(&format!(",\"reason\":\"{}\"", json_escape(reason)));
            }
            Event::DeadlineHit { phase, epoch } => {
                s.push_str(&format!(
                    ",\"phase\":\"{}\",\"epoch\":{}",
                    json_escape(phase),
                    epoch
                ));
            }
            Event::Checkpoint {
                phase,
                epoch,
                emergency,
            } => {
                s.push_str(&format!(
                    ",\"phase\":\"{}\",\"epoch\":{},\"emergency\":{}",
                    json_escape(phase),
                    epoch,
                    emergency
                ));
            }
        }
        s.push('}');
        s
    }
}

const N_COUNTERS: usize = Counter::ALL.len();
const N_SPANS: usize = SpanKind::ALL.len();
const N_SERIES: usize = Series::ALL.len();
const N_HISTS: usize = Hist::ALL.len();

/// Number of power-of-two histogram buckets: bucket 0 holds the value 0,
/// bucket `k ≥ 1` holds values in `[2^(k-1), 2^k)`.
pub const HIST_BUCKETS: usize = 65;

/// Capacity of the in-memory flight-recorder ring buffer. Oldest events are
/// overwritten once full; sequence numbers stay monotonic so a dumped stream
/// makes the truncation visible.
pub const FLIGHT_RECORDER_CAP: usize = 1024;

/// Bucket index for a histogram value: 0 for 0, else the bit width
/// (`1 + floor(log2 v)`), so bucket `k` spans `[2^(k-1), 2^k)`.
#[inline]
pub fn hist_bucket(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive `(lo, hi)` value bounds of histogram bucket `idx`.
pub fn hist_bucket_bounds(idx: usize) -> (u64, u64) {
    if idx == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (idx - 1);
        let hi = if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        };
        (lo, hi)
    }
}

/// Bounded flight-recorder ring. The buffer is preallocated at construction
/// so pushes never allocate.
#[derive(Debug)]
struct EventRing {
    buf: Vec<RecordedEvent>,
    head: usize,
    next_seq: u64,
    cap: usize,
}

impl EventRing {
    fn with_capacity(cap: usize) -> Self {
        EventRing {
            buf: Vec::with_capacity(cap),
            head: 0,
            next_seq: 0,
            cap,
        }
    }

    /// Appends one event; returns `true` when the full ring overwrote (and
    /// thereby dropped) its oldest retained event.
    fn push(&mut self, event: Event) -> bool {
        let rec = RecordedEvent {
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        if self.buf.len() < self.cap {
            self.buf.push(rec);
            false
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            true
        }
    }

    /// Last `n` retained events, oldest first.
    fn tail(&self, n: usize) -> Vec<RecordedEvent> {
        let len = self.buf.len();
        if len == 0 {
            return Vec::new();
        }
        let take = n.min(len);
        let mut out = Vec::with_capacity(take);
        for i in (len - take)..len {
            out.push(self.buf[(self.head + i) % len]);
        }
        out
    }
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // a poisoned recorder keeps recording; telemetry must not compound a
    // panic elsewhere with one of its own
    r.unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct Inner {
    counters: [AtomicU64; N_COUNTERS],
    span_nanos: [AtomicU64; N_SPANS],
    span_counts: [AtomicU64; N_SPANS],
    series: Mutex<[Vec<f64>; N_SERIES]>,
    events: Mutex<EventRing>,
    hist_buckets: [[AtomicU64; HIST_BUCKETS]; N_HISTS],
    hist_counts: [AtomicU64; N_HISTS],
    hist_sums: [AtomicU64; N_HISTS],
}

/// A cheap, cloneable telemetry handle.
///
/// [`Telemetry::off`] (the default) is a `None` handle: every record method
/// is a no-op branch with no allocation, no atomics touched. A
/// [`Telemetry::collecting`] handle shares one `Arc` slab of atomics across
/// all clones, so counts from worker-thread model clones merge automatically.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl Telemetry {
    /// A disabled collector: all recording is a no-op, zero allocation.
    pub fn off() -> Self {
        Telemetry(None)
    }

    /// A live collector. The atomic slabs and the flight-recorder ring are
    /// allocated here, once; counter/span/histogram/event record paths never
    /// allocate afterwards (series pushes may grow their epoch-bounded
    /// vectors).
    pub fn collecting() -> Self {
        Telemetry(Some(Arc::new(Inner {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            span_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            span_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            series: Mutex::new(std::array::from_fn(|_| Vec::new())),
            events: Mutex::new(EventRing::with_capacity(FLIGHT_RECORDER_CAP)),
            hist_buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            hist_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_sums: std::array::from_fn(|_| AtomicU64::new(0)),
        })))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to a counter slot (relaxed; totals are order-independent).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.0 {
            inner.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments a counter slot by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Current value of a counter (0 when disabled).
    pub fn counter(&self, c: Counter) -> u64 {
        match &self.0 {
            Some(inner) => inner.counters[c as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Adds one timed observation of `kind`.
    pub fn record_span(&self, kind: SpanKind, elapsed: Duration) {
        if let Some(inner) = &self.0 {
            inner.span_nanos[kind as usize].fetch_add(
                elapsed.as_nanos().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
            inner.span_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a span; the elapsed time is recorded when the guard drops.
    /// When disabled the guard holds no clock and drop is a no-op. A live
    /// span also emits [`Event::PhaseStart`]/[`Event::PhaseEnd`] into the
    /// flight recorder.
    pub fn span(&self, kind: SpanKind) -> SpanGuard<'_> {
        if self.0.is_some() {
            self.record_event(Event::PhaseStart { phase: kind });
        }
        SpanGuard {
            tel: self,
            kind,
            start: self.0.as_ref().map(|_| Instant::now()),
        }
    }

    /// Appends a typed event to the flight-recorder ring (no-op when off;
    /// never allocates — the ring is preallocated). Once the ring is full,
    /// each push drops the oldest retained event and bumps
    /// [`Counter::EventsDropped`], making the truncation observable without
    /// diffing sequence numbers.
    pub fn record_event(&self, event: Event) {
        if let Some(inner) = &self.0 {
            let dropped = relock(inner.events.lock()).push(event);
            if dropped {
                inner.counters[Counter::EventsDropped as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Last `n` retained events, oldest first (empty when disabled). This is
    /// the post-mortem tail attached to failures.
    pub fn event_tail(&self, n: usize) -> Vec<RecordedEvent> {
        match &self.0 {
            Some(inner) => relock(inner.events.lock()).tail(n),
            None => Vec::new(),
        }
    }

    /// All events still retained in the ring, oldest first.
    pub fn events(&self) -> Vec<RecordedEvent> {
        self.event_tail(FLIGHT_RECORDER_CAP)
    }

    /// Total events ever recorded (including ones the ring has dropped).
    pub fn events_recorded(&self) -> u64 {
        match &self.0 {
            Some(inner) => relock(inner.events.lock()).next_seq,
            None => 0,
        }
    }

    /// Appends one value to a per-epoch series slot (no-op when off).
    pub fn push_series(&self, s: Series, v: f64) {
        if let Some(inner) = &self.0 {
            relock(inner.series.lock())[s as usize].push(v);
        }
    }

    /// Copy of one series (empty when disabled).
    pub fn series(&self, s: Series) -> Vec<f64> {
        match &self.0 {
            Some(inner) => relock(inner.series.lock())[s as usize].clone(),
            None => Vec::new(),
        }
    }

    /// Records one observation into a power-of-two histogram (no-op when
    /// off; three relaxed atomic adds when collecting).
    #[inline]
    pub fn record_hist(&self, h: Hist, v: u64) {
        if let Some(inner) = &self.0 {
            inner.hist_buckets[h as usize][hist_bucket(v)].fetch_add(1, Ordering::Relaxed);
            inner.hist_counts[h as usize].fetch_add(1, Ordering::Relaxed);
            inner.hist_sums[h as usize].fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records a wall-clock duration (as nanoseconds) into a time histogram.
    #[inline]
    pub fn record_hist_duration(&self, h: Hist, d: Duration) {
        if self.0.is_some() {
            self.record_hist(h, d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Accumulated seconds spent in `kind` (0 when disabled).
    pub fn span_secs(&self, kind: SpanKind) -> f64 {
        match &self.0 {
            Some(inner) => inner.span_nanos[kind as usize].load(Ordering::Relaxed) as f64 * 1e-9,
            None => 0.0,
        }
    }

    /// Number of observations of `kind` (0 when disabled).
    pub fn span_count(&self, kind: SpanKind) -> u64 {
        match &self.0 {
            Some(inner) => inner.span_counts[kind as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Point-in-time copy of one histogram (empty when disabled).
    pub fn hist(&self, h: Hist) -> HistSnapshot {
        match &self.0 {
            Some(inner) => HistSnapshot {
                count: inner.hist_counts[h as usize].load(Ordering::Relaxed),
                sum: inner.hist_sums[h as usize].load(Ordering::Relaxed),
                buckets: std::array::from_fn(|i| {
                    inner.hist_buckets[h as usize][i].load(Ordering::Relaxed)
                }),
            },
            None => HistSnapshot::empty(),
        }
    }

    /// A point-in-time copy of all counters, span aggregates, series,
    /// histograms, and the event count.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: Counter::ALL.map(|c| self.counter(c)),
            spans: SpanKind::ALL.map(|k| SpanStat {
                count: self.span_count(k),
                secs: self.span_secs(k),
            }),
            series: Series::ALL.map(|s| self.series(s)),
            hists: Hist::ALL.map(|h| self.hist(h)),
            events_recorded: self.events_recorded(),
        }
    }
}

/// RAII span timer returned by [`Telemetry::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tel: &'a Telemetry,
    kind: SpanKind,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            self.tel.record_span(self.kind, elapsed);
            self.tel.record_event(Event::PhaseEnd {
                phase: self.kind,
                secs: elapsed.as_secs_f64(),
            });
        }
    }
}

/// Aggregate for one span kind inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of timed observations.
    pub count: u64,
    /// Total seconds across observations.
    pub secs: f64,
}

/// Point-in-time copy of one power-of-two histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating only if the u64 wraps — it won't
    /// for iteration counts or nanosecond latencies at pipeline scale).
    pub sum: u64,
    /// Per-bucket observation counts; bucket `k` spans
    /// [`hist_bucket_bounds`]`(k)`.
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    /// The all-zero histogram (shape of a disabled collector's snapshot).
    pub fn empty() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)` with inclusive
    /// value bounds — the compact form used in JSON reports.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = hist_bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

/// Point-in-time copy of a collector, indexable by [`Counter`] / [`SpanKind`]
/// / [`Series`] / [`Hist`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    counters: [u64; N_COUNTERS],
    spans: [SpanStat; N_SPANS],
    series: [Vec<f64>; N_SERIES],
    hists: [HistSnapshot; N_HISTS],
    events_recorded: u64,
}

impl Snapshot {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Aggregate of one span kind.
    pub fn span(&self, k: SpanKind) -> SpanStat {
        self.spans[k as usize]
    }

    /// Iterates `(name, value)` over all counters, in slot order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL
            .iter()
            .map(move |&c| (c.name(), self.counter(c)))
    }

    /// Iterates `(name, stat)` over all span kinds, in slot order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, SpanStat)> + '_ {
        SpanKind::ALL.iter().map(move |&k| (k.name(), self.span(k)))
    }

    /// Values of one series (empty from a disabled collector).
    pub fn series(&self, s: Series) -> &[f64] {
        &self.series[s as usize]
    }

    /// Iterates `(name, values)` over all series, in slot order.
    pub fn series_iter(&self) -> impl Iterator<Item = (&'static str, &[f64])> + '_ {
        Series::ALL.iter().map(move |&s| (s.name(), self.series(s)))
    }

    /// One histogram's snapshot.
    pub fn hist(&self, h: Hist) -> &HistSnapshot {
        &self.hists[h as usize]
    }

    /// Iterates `(name, histogram)` over all histograms, in slot order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &HistSnapshot)> + '_ {
        Hist::ALL.iter().map(move |&h| (h.name(), self.hist(h)))
    }

    /// Total events recorded into the flight recorder.
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded
    }

    /// Whether every counter is zero, no span was observed, every series and
    /// histogram is empty, and no event was recorded (the shape of a
    /// snapshot taken from a disabled collector).
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&v| v == 0)
            && self.spans.iter().all(|s| s.count == 0)
            && self.series.iter().all(|s| s.is_empty())
            && self.hists.iter().all(|h| h.count == 0)
            && self.events_recorded == 0
    }

    /// Counter values only — the policy-independent, bit-comparable part of
    /// a snapshot (timings excluded by construction).
    pub fn counter_values(&self) -> [u64; N_COUNTERS] {
        self.counters
    }

    /// All series values, in slot order — like [`Snapshot::counter_values`],
    /// part of the policy-independent determinism contract.
    pub fn series_values(&self) -> &[Vec<f64>; N_SERIES] {
        &self.series
    }
}

// ---------------------------------------------------------------------------
// Rate windows — trailing per-second throughput for the serving layer
// ---------------------------------------------------------------------------

/// Length of the trailing window a [`RateWindow`] averages over, in seconds.
pub const RATE_WINDOW_SECS: u64 = 10;

/// Ring size for [`RateWindow`]'s per-second cells. Strictly larger than
/// [`RATE_WINDOW_SECS`] so a cell being reused for the current second can
/// never alias a second still inside the reported window.
const RATE_CELLS: usize = 16;

#[derive(Debug)]
struct RateInner {
    start: Instant,
    /// `1 + absolute second` each cell was last written for (0 = never
    /// written), so a zeroed slab means "no data" rather than "second 0".
    stamps: [AtomicU64; RATE_CELLS],
    cells: [AtomicU64; RATE_CELLS],
}

/// A fixed trailing window of per-second event counts (requests/s, rows/s)
/// with the same off-is-free contract as [`Telemetry`]: an off handle is a
/// `None` and [`RateWindow::record`] reduces to one branch with no
/// allocation and no atomics touched.
///
/// Accounting is lock-free over a ring of per-second `AtomicU64` cells.
/// A cell is claimed for a new second by a compare-exchange on its stamp;
/// the losing thread of that race may land its count in a cell that is
/// being reset, which can shave a few events off one boundary second —
/// acceptable noise for a throughput gauge, never a panic or a lock.
#[derive(Debug, Clone, Default)]
pub struct RateWindow(Option<Arc<RateInner>>);

impl RateWindow {
    /// A disabled window: recording is a no-op, the rate reads 0.
    pub fn off() -> Self {
        RateWindow(None)
    }

    /// A live window starting its clock now.
    pub fn collecting() -> Self {
        RateWindow(Some(Arc::new(RateInner {
            start: Instant::now(),
            stamps: std::array::from_fn(|_| AtomicU64::new(0)),
            cells: std::array::from_fn(|_| AtomicU64::new(0)),
        })))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` events to the current second's cell.
    #[inline]
    pub fn record(&self, n: u64) {
        if let Some(inner) = &self.0 {
            Self::record_at(inner, inner.start.elapsed().as_secs(), n);
        }
    }

    fn record_at(inner: &RateInner, sec: u64, n: u64) {
        let idx = (sec % RATE_CELLS as u64) as usize;
        let stamp = sec + 1;
        let prev = inner.stamps[idx].load(Ordering::Acquire);
        if prev != stamp
            && inner.stamps[idx]
                .compare_exchange(prev, stamp, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            // this thread claimed the cell for a fresh second: clear the
            // stale count left over from `RATE_CELLS` seconds ago
            inner.cells[idx].store(0, Ordering::Release);
        }
        inner.cells[idx].fetch_add(n, Ordering::Relaxed);
    }

    /// Events per second averaged over the trailing [`RATE_WINDOW_SECS`]
    /// seconds (including the in-progress one); 0.0 when disabled. Early in
    /// a process's life the divisor is the uptime, not the full window, so
    /// the first seconds of traffic are not diluted by a cold start.
    pub fn per_sec(&self) -> f64 {
        match &self.0 {
            Some(inner) => Self::per_sec_at(inner, inner.start.elapsed().as_secs()),
            None => 0.0,
        }
    }

    fn per_sec_at(inner: &RateInner, now: u64) -> f64 {
        let lo = (now + 1).saturating_sub(RATE_WINDOW_SECS);
        let mut total = 0u64;
        for i in 0..RATE_CELLS {
            let stamp = inner.stamps[i].load(Ordering::Acquire);
            if stamp == 0 {
                continue;
            }
            let sec = stamp - 1;
            if sec >= lo && sec <= now {
                total += inner.cells[i].load(Ordering::Relaxed);
            }
        }
        total as f64 / (now - lo + 1) as f64
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Escapes a string for use inside a Prometheus label value (the text
/// exposition format escapes backslash, double quote, and newline).
pub fn prom_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`Snapshot`] in the Prometheus text exposition format.
///
/// * Every [`Counter`] becomes `scis_<name>` with `# TYPE … counter`, where
///   `<name>` is exactly [`Counter::name`]; `scis_events_recorded` rides
///   along from the flight recorder.
/// * Span aggregates become two labeled counters,
///   `scis_phase_seconds_total{phase="…"}` and
///   `scis_phase_runs_total{phase="…"}`.
/// * Every [`Hist`] becomes a native `histogram`: cumulative
///   `scis_<name>_bucket{le="…"}` lines whose `le` values are the inclusive
///   upper bounds of the occupied power-of-two buckets (the `hi` of each
///   `[lo, hi, count]` triple), a terminal `le="+Inf"` bucket, then `_sum`
///   and `_count`.
///
/// Series are omitted: they are per-epoch logs, not aggregable gauges.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.counters() {
        out.push_str(&format!(
            "# TYPE scis_{name} counter\nscis_{name} {value}\n"
        ));
    }
    out.push_str(&format!(
        "# TYPE scis_events_recorded counter\nscis_events_recorded {}\n",
        snap.events_recorded()
    ));
    out.push_str("# TYPE scis_phase_seconds_total counter\n");
    for (name, stat) in snap.spans() {
        out.push_str(&format!(
            "scis_phase_seconds_total{{phase=\"{}\"}} {}\n",
            prom_escape_label(name),
            stat.secs
        ));
    }
    out.push_str("# TYPE scis_phase_runs_total counter\n");
    for (name, stat) in snap.spans() {
        out.push_str(&format!(
            "scis_phase_runs_total{{phase=\"{}\"}} {}\n",
            prom_escape_label(name),
            stat.count
        ));
    }
    for (name, h) in snap.hists() {
        out.push_str(&format!("# TYPE scis_{name} histogram\n"));
        let mut cumulative = 0u64;
        for (_, hi, count) in h.nonzero_buckets() {
            cumulative += count;
            out.push_str(&format!("scis_{name}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "scis_{name}_bucket{{le=\"+Inf\"}} {}\nscis_{name}_sum {}\nscis_{name}_count {}\n",
            h.count, h.sum, h.count
        ));
    }
    out
}

/// Escapes a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{}", v)
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        t.incr(Counter::DimBatches);
        t.add(Counter::SinkhornIterations, 100);
        t.record_span(SpanKind::Sse, Duration::from_secs(1));
        drop(t.span(SpanKind::Impute));
        assert_eq!(t.counter(Counter::DimBatches), 0);
        assert_eq!(t.span_count(SpanKind::Sse), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn collecting_accumulates() {
        let t = Telemetry::collecting();
        assert!(t.is_enabled());
        t.incr(Counter::DimEpochs);
        t.add(Counter::SinkhornIterations, 41);
        t.incr(Counter::SinkhornIterations);
        assert_eq!(t.counter(Counter::DimEpochs), 1);
        assert_eq!(t.counter(Counter::SinkhornIterations), 42);
        let snap = t.snapshot();
        assert_eq!(snap.counter(Counter::SinkhornIterations), 42);
        assert!(!snap.is_empty());
    }

    #[test]
    fn clones_share_one_slab() {
        let t = Telemetry::collecting();
        let workers: Vec<Telemetry> = (0..4).map(|_| t.clone()).collect();
        std::thread::scope(|scope| {
            for w in &workers {
                scope.spawn(move || {
                    for _ in 0..1000 {
                        w.incr(Counter::NnForwards);
                    }
                });
            }
        });
        assert_eq!(t.counter(Counter::NnForwards), 4000);
    }

    #[test]
    fn span_guard_times_once() {
        let t = Telemetry::collecting();
        {
            let _g = t.span(SpanKind::TrainInitial);
            std::hint::black_box(0u64);
        }
        assert_eq!(t.span_count(SpanKind::TrainInitial), 1);
        assert!(t.span_secs(SpanKind::TrainInitial) >= 0.0);
    }

    #[test]
    fn snapshot_counters_are_ordered_and_named() {
        let t = Telemetry::collecting();
        t.add(Counter::SseProbes, 7);
        let snap = t.snapshot();
        let pairs: Vec<_> = snap.counters().collect();
        assert_eq!(pairs.len(), Counter::ALL.len());
        assert!(pairs.contains(&("sse_probes", 7)));
        // names are unique
        let mut names: Vec<_> = pairs.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn json_helpers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn json_escape_covers_every_control_character() {
        // regression: every code point below 0x20 must come out as an escape
        // sequence, never as a raw control byte
        for c in 0u32..0x20 {
            let ch = char::from_u32(c).unwrap();
            let escaped = json_escape(&ch.to_string());
            assert!(
                escaped.chars().all(|e| (e as u32) >= 0x20),
                "raw control char {:#04x} leaked into {:?}",
                c,
                escaped
            );
            let expected = match ch {
                '\n' => "\\n".to_string(),
                '\r' => "\\r".to_string(),
                '\t' => "\\t".to_string(),
                _ => format!("\\u{:04x}", c),
            };
            assert_eq!(escaped, expected, "control char {:#04x}", c);
        }
        // a string mixing controls with ordinary text stays intact around them
        assert_eq!(json_escape("a\u{0}b\u{1f}c"), "a\\u0000b\\u001fc");
    }

    #[test]
    fn json_f64_round_trips_negative_zero_and_subnormals() {
        let nz = json_f64(-0.0);
        let parsed: f64 = nz.parse().unwrap();
        assert_eq!(parsed.to_bits(), (-0.0f64).to_bits(), "-0.0 via {:?}", nz);
        for v in [f64::MIN_POSITIVE / 2.0, 5e-324, f64::MIN_POSITIVE, 1e-300] {
            let s = json_f64(v);
            assert_ne!(s, "null");
            let parsed: f64 = s.parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{} via {:?}", v, s);
        }
    }

    #[test]
    fn hist_bucket_math() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(u64::MAX), 64);
        // bounds are consistent with the index function
        for idx in 0..HIST_BUCKETS {
            let (lo, hi) = hist_bucket_bounds(idx);
            assert_eq!(hist_bucket(lo), idx);
            assert_eq!(hist_bucket(hi), idx);
        }
    }

    #[test]
    fn histograms_accumulate_and_snapshot() {
        let t = Telemetry::collecting();
        for v in [0u64, 1, 2, 3, 100] {
            t.record_hist(Hist::SinkhornSolveIters, v);
        }
        let h = t.hist(Hist::SinkhornSolveIters);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 106);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[7], 1); // 100 ∈ [64,127]
        let compact: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(compact, vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (64, 127, 1)]);
        // off handle records nothing and snapshots empty
        let off = Telemetry::off();
        off.record_hist(Hist::BatchStepNanos, 7);
        assert_eq!(off.hist(Hist::BatchStepNanos), HistSnapshot::empty());
    }

    #[test]
    fn series_accumulate_per_slot() {
        let t = Telemetry::collecting();
        t.push_series(Series::DimLoss, 0.5);
        t.push_series(Series::DimLoss, 0.25);
        t.push_series(Series::LearningRate, 1e-3);
        assert_eq!(t.series(Series::DimLoss), vec![0.5, 0.25]);
        assert_eq!(t.series(Series::LearningRate), vec![1e-3]);
        assert!(t.series(Series::GradNorm).is_empty());
        let snap = t.snapshot();
        assert_eq!(snap.series(Series::DimLoss), &[0.5, 0.25]);
        assert!(!snap.is_empty());
        // off handle: no-op, empty
        let off = Telemetry::off();
        off.push_series(Series::DimLoss, 1.0);
        assert!(off.series(Series::DimLoss).is_empty());
    }

    #[test]
    fn event_ring_wraps_with_monotonic_seq() {
        let mut ring = EventRing::with_capacity(4);
        for i in 0..6u64 {
            ring.push(Event::SinkhornEscalation { count: i });
        }
        let tail = ring.tail(usize::MAX);
        assert_eq!(tail.len(), 4, "ring must stay bounded");
        let seqs: Vec<u64> = tail.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5], "oldest dropped, order preserved");
        assert_eq!(ring.next_seq, 6);
        // a shorter tail takes the newest entries
        let last2 = ring.tail(2);
        assert_eq!(last2[0].seq, 4);
        assert_eq!(last2[1].seq, 5);
    }

    #[test]
    fn ring_overflow_bumps_events_dropped() {
        let t = Telemetry::collecting();
        let extra = 37u64;
        for i in 0..(FLIGHT_RECORDER_CAP as u64 + extra) {
            t.record_event(Event::SinkhornEscalation { count: i });
        }
        // the overwritten history is now a counter, not just a seq gap
        assert_eq!(t.counter(Counter::EventsDropped), extra);
        assert_eq!(t.events_recorded(), FLIGHT_RECORDER_CAP as u64 + extra);
        let retained = t.events();
        assert_eq!(retained.len(), FLIGHT_RECORDER_CAP);
        assert_eq!(retained[0].seq, extra, "oldest events were dropped");
        // before overflow the counter stays at zero
        let fresh = Telemetry::collecting();
        for _ in 0..FLIGHT_RECORDER_CAP {
            fresh.record_event(Event::CacheInvalidation);
        }
        assert_eq!(fresh.counter(Counter::EventsDropped), 0);
    }

    #[test]
    fn rate_window_averages_recent_seconds() {
        let w = RateWindow::collecting();
        let inner = w.0.as_ref().unwrap();
        // three seconds of uptime at 5/s: the divisor is the uptime
        for sec in 0..3 {
            RateWindow::record_at(inner, sec, 5);
        }
        assert_eq!(RateWindow::per_sec_at(inner, 2), 5.0);
        // after the window has fully slid past, the old cells age out
        assert_eq!(RateWindow::per_sec_at(inner, 2 + RATE_WINDOW_SECS), 0.0);
        // a reused ring cell is reset, not accumulated
        RateWindow::record_at(inner, RATE_CELLS as u64, 7);
        assert_eq!(
            RateWindow::per_sec_at(inner, RATE_CELLS as u64),
            7.0 / RATE_WINDOW_SECS as f64
        );
        // the off handle records nothing and reads zero
        let off = RateWindow::off();
        assert!(!off.is_enabled());
        off.record(100);
        assert_eq!(off.per_sec(), 0.0);
    }

    #[test]
    fn prometheus_rendering_golden() {
        let t = Telemetry::collecting();
        t.add(Counter::SinkhornSolves, 3);
        for v in [0u64, 1, 2, 3, 100] {
            t.record_hist(Hist::SinkhornSolveIters, v);
        }
        t.record_span(SpanKind::Validate, Duration::from_millis(250));
        let text = render_prometheus(&t.snapshot());
        // counters are named exactly after Counter::name(), scis_-prefixed
        for c in Counter::ALL {
            assert!(
                text.contains(&format!("# TYPE scis_{} counter\n", c.name())),
                "missing TYPE line for {}",
                c.name()
            );
        }
        assert!(text.contains("# TYPE scis_sinkhorn_solves counter\nscis_sinkhorn_solves 3\n"));
        assert!(text.contains("scis_events_recorded 0\n"));
        assert!(text.contains("scis_phase_runs_total{phase=\"validate\"} 1\n"));
        // the occupied buckets render cumulatively with inclusive upper
        // bounds as le values: 0→1, 1→2, [2,3]→4, [64,127]→5, +Inf→5
        let hist = concat!(
            "# TYPE scis_sinkhorn_solve_iters histogram\n",
            "scis_sinkhorn_solve_iters_bucket{le=\"0\"} 1\n",
            "scis_sinkhorn_solve_iters_bucket{le=\"1\"} 2\n",
            "scis_sinkhorn_solve_iters_bucket{le=\"3\"} 4\n",
            "scis_sinkhorn_solve_iters_bucket{le=\"127\"} 5\n",
            "scis_sinkhorn_solve_iters_bucket{le=\"+Inf\"} 5\n",
            "scis_sinkhorn_solve_iters_sum 106\n",
            "scis_sinkhorn_solve_iters_count 5\n",
        );
        assert!(text.contains(hist), "histogram block malformed:\n{}", text);
        // le bounds and cumulative counts are monotonically non-decreasing
        let mut last_le = -1.0f64;
        let mut last_cum = 0u64;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("scis_sinkhorn_solve_iters_bucket{le=\"") else {
                continue;
            };
            let (le_str, cum_str) = rest.split_once("\"} ").unwrap();
            let le = if le_str == "+Inf" {
                f64::INFINITY
            } else {
                le_str.parse().unwrap()
            };
            let cum: u64 = cum_str.parse().unwrap();
            assert!(le > last_le, "le not increasing at {:?}", line);
            assert!(cum >= last_cum, "cumulative count decreased at {:?}", line);
            last_le = le;
            last_cum = cum;
        }
        assert!(last_le.is_infinite(), "+Inf terminal bucket missing");
        // an empty collector still renders well-formed, all-zero metrics
        let empty = render_prometheus(&Telemetry::collecting().snapshot());
        assert!(empty.contains("scis_serve_request_nanos_bucket{le=\"+Inf\"} 0\n"));
        assert!(empty.contains("scis_serve_request_nanos_count 0\n"));
    }

    #[test]
    fn prometheus_label_escaping() {
        assert_eq!(prom_escape_label("plain"), "plain");
        assert_eq!(prom_escape_label("a\"b"), "a\\\"b");
        assert_eq!(prom_escape_label("a\\b"), "a\\\\b");
        assert_eq!(prom_escape_label("a\nb"), "a\\nb");
    }

    #[test]
    fn events_record_and_tail_through_the_handle() {
        let t = Telemetry::collecting();
        assert!(t.events().is_empty());
        t.record_event(Event::Rollback {
            epoch: 3,
            retries: 1,
        });
        t.record_event(Event::Degraded {
            reason: "mean_fallback",
        });
        assert_eq!(t.events_recorded(), 2);
        let tail = t.event_tail(8);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 0);
        assert_eq!(
            tail[0].event,
            Event::Rollback {
                epoch: 3,
                retries: 1
            }
        );
        assert_eq!(
            tail[1].event,
            Event::Degraded {
                reason: "mean_fallback"
            }
        );
        // off handle records nothing
        let off = Telemetry::off();
        off.record_event(Event::CacheInvalidation);
        assert_eq!(off.events_recorded(), 0);
        assert!(off.event_tail(8).is_empty());
    }

    #[test]
    fn span_guard_emits_phase_events() {
        let t = Telemetry::collecting();
        {
            let _g = t.span(SpanKind::Sse);
            std::hint::black_box(0u64);
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].event,
            Event::PhaseStart {
                phase: SpanKind::Sse
            }
        );
        assert!(matches!(
            events[1].event,
            Event::PhaseEnd { phase: SpanKind::Sse, secs } if secs >= 0.0
        ));
    }

    #[test]
    fn event_json_lines_are_well_formed() {
        let cases = [
            (
                Event::PhaseStart {
                    phase: SpanKind::Sse,
                },
                r#"{"seq":0,"type":"phase_start","phase":"sse"}"#,
            ),
            (
                Event::EpochEnd {
                    phase: "initial",
                    epoch: 2,
                    loss: 0.5,
                    grad_norm: 1.25,
                    lr: 0.001,
                    sinkhorn_iters: 42,
                    warm_hit_rate: 0.75,
                },
                r#"{"seq":0,"type":"epoch_end","phase":"initial","epoch":2,"loss":0.5,"grad_norm":1.25,"lr":0.001,"sinkhorn_iters":42,"warm_hit_rate":0.75}"#,
            ),
            (
                Event::BatchSkipped { epoch: 1, batch: 7 },
                r#"{"seq":0,"type":"batch_skipped","epoch":1,"batch":7}"#,
            ),
            (
                Event::SseProbe {
                    n: 120,
                    prob: 0.9,
                    accepted: true,
                },
                r#"{"seq":0,"type":"sse_probe","n":120,"prob":0.9,"accepted":true}"#,
            ),
            (
                Event::CacheInvalidation,
                r#"{"seq":0,"type":"cache_invalidation"}"#,
            ),
            (
                Event::Degraded {
                    reason: "mean_fallback",
                },
                r#"{"seq":0,"type":"degraded","reason":"mean_fallback"}"#,
            ),
            (
                Event::DeadlineHit {
                    phase: "initial",
                    epoch: 3,
                },
                r#"{"seq":0,"type":"deadline_hit","phase":"initial","epoch":3}"#,
            ),
            (
                Event::Checkpoint {
                    phase: "retrain",
                    epoch: 10,
                    emergency: false,
                },
                r#"{"seq":0,"type":"checkpoint","phase":"retrain","epoch":10,"emergency":false}"#,
            ),
        ];
        for (event, expected) in cases {
            let line = RecordedEvent { seq: 0, event }.to_json();
            assert_eq!(line, expected);
        }
        // non-finite payloads become JSON null, not bare NaN tokens
        let line = RecordedEvent {
            seq: 9,
            event: Event::LrBackoff {
                epoch: 0,
                lr: f64::NAN,
            },
        }
        .to_json();
        assert_eq!(line, r#"{"seq":9,"type":"lr_backoff","epoch":0,"lr":null}"#);
    }
}
