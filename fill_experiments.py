#!/usr/bin/env python3
"""Folds the bench_results/logs/*.log outputs into EXPERIMENTS.md at the
<!-- XXX-RESULTS --> placeholders, as fenced measured blocks."""
import os, re

LOGS = "bench_results/logs"
MAP = {
    "TABLE3-RESULTS": "table3.log",
    "TABLE4-RESULTS": "table4.log",
    "FIG2-RESULTS": "fig2.log",
    "FIG3-RESULTS": "fig3.log",
    "FIG4-RESULTS": "fig4.log",
    "TABLE5-RESULTS": "table5.log",  # table5 + table6 share the section
    "TABLE7-RESULTS": "table7.log",
    "FIGDIV-RESULTS": "fig_divergence.log",
}

def load(name):
    p = os.path.join(LOGS, name)
    if not os.path.exists(p):
        return None
    txt = open(p, encoding="utf-8").read()
    # drop the per-method progress chatter, keep headers + tables
    lines = [l for l in txt.splitlines() if not l.startswith("  ") or "done (" not in l]
    return "\n".join(lines).strip()

s = open("EXPERIMENTS.md", encoding="utf-8").read()
for marker, log in MAP.items():
    content = load(log)
    if content is None:
        continue
    extra = ""
    if marker == "TABLE5-RESULTS":
        t6 = load("table6.log")
        if t6:
            extra = "\n\nTable VI (large recipes):\n\n```text\n" + t6 + "\n```"
    block = f"Measured:\n\n```text\n{content}\n```{extra}"
    s = s.replace(f"<!-- {marker} -->", block)
open("EXPERIMENTS.md", "w", encoding="utf-8").write(s)
print("filled")
