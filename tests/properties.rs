//! Property-based tests (proptest) on the core data structures and
//! invariants: mask algebra, Eq.-1 merging, normalization round-trips,
//! Sinkhorn plan marginals, divergence positivity, tree prediction bounds,
//! and metric sanity.

use proptest::prelude::*;
use scis_data::mask::MaskMatrix;
use scis_data::normalize::MinMaxScaler;
use scis_data::{Dataset, Holdout};
use scis_imputers::tree::{RegressionTree, TreeConfig};
use scis_ot::{ms_divergence, SinkhornOptions};
use scis_tensor::{Matrix, Rng64};

/// Strategy: a small matrix of finite values in [-100, 100].
fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: matrix + aligned boolean mask pattern.
fn matrix_with_mask() -> impl Strategy<Value = (Matrix, Vec<bool>)> {
    small_matrix().prop_flat_map(|m| {
        let len = m.len();
        (Just(m), proptest::collection::vec(any::<bool>(), len))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mask_set_get_roundtrip((m, bits) in matrix_with_mask()) {
        let (r, c) = m.shape();
        let mut mask = MaskMatrix::all_missing(r, c);
        for i in 0..r {
            for j in 0..c {
                mask.set(i, j, bits[i * c + j]);
            }
        }
        let mut count = 0usize;
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(mask.get(i, j), bits[i * c + j]);
                count += bits[i * c + j] as usize;
            }
        }
        prop_assert_eq!(mask.count_observed(), count);
    }

    #[test]
    fn merge_imputed_preserves_observed_exactly((m, bits) in matrix_with_mask()) {
        let (r, c) = m.shape();
        let mut mask = MaskMatrix::all_missing(r, c);
        for i in 0..r {
            for j in 0..c {
                mask.set(i, j, bits[i * c + j]);
            }
        }
        let kinds = vec![scis_data::ColumnKind::Continuous; c];
        let ds = Dataset::from_complete(&m, mask, kinds);
        let xbar = Matrix::full(r, c, -7.25);
        let merged = ds.merge_imputed(&xbar);
        for i in 0..r {
            for j in 0..c {
                if bits[i * c + j] {
                    prop_assert_eq!(merged[(i, j)], m[(i, j)]);
                } else {
                    prop_assert_eq!(merged[(i, j)], -7.25);
                }
            }
        }
    }

    #[test]
    fn minmax_roundtrip_is_lossless(m in small_matrix()) {
        let scaler = MinMaxScaler::fit(&m);
        let t = scaler.transform(&m);
        // all observed values land in [0,1]
        for v in t.as_slice() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(v), "normalized {}", v);
        }
        let back = scaler.inverse_transform(&t);
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{} vs {}", a, b);
        }
    }

    #[test]
    fn sinkhorn_plan_satisfies_marginals(
        seed in 0u64..1000,
        n in 2usize..10,
        lambda in 0.05f64..5.0,
    ) {
        let mut rng = Rng64::seed_from_u64(seed);
        let cost = Matrix::from_fn(n, n, |_, _| rng.uniform() * 3.0);
        // ε-scaling warm starts handle the slow small-λ regime; column
        // marginals are exact after every g-update by construction, rows
        // converge — gate the strict check on reported convergence
        let opts = SinkhornOptions { lambda, max_iters: 20_000, tol: 1e-9 };
        let res = scis_ot::sinkhorn::sinkhorn_eps_scaling_uniform(&cost, &opts, 5);
        let u = 1.0 / n as f64;
        for s in res.plan.col_sums() {
            prop_assert!((s - u).abs() < 1e-6, "col marginal {}", s);
        }
        let row_tol = if res.converged { 1e-6 } else { 1e-3 };
        for s in res.plan.row_sums() {
            prop_assert!((s - u).abs() < row_tol, "row marginal {} (converged={})", s, res.converged);
        }
        for p in res.plan.as_slice() {
            prop_assert!(*p >= 0.0 && p.is_finite());
        }
    }

    #[test]
    fn ms_divergence_nonnegative_and_zero_on_self(
        seed in 0u64..1000,
        n in 2usize..8,
        d in 1usize..5,
    ) {
        let mut rng = Rng64::seed_from_u64(seed);
        let a = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let b = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, d, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let opts = SinkhornOptions { lambda: 0.5, max_iters: 3000, tol: 1e-10 };
        let s_ab = ms_divergence(&a, &b, &mask, &opts).value;
        let s_aa = ms_divergence(&a, &a, &mask, &opts).value;
        prop_assert!(s_ab > -1e-6, "S(a,b) = {}", s_ab);
        prop_assert!(s_aa.abs() < 1e-6, "S(a,a) = {}", s_aa);
    }

    #[test]
    fn tree_predictions_bounded_by_targets(
        seed in 0u64..1000,
        n in 10usize..60,
    ) {
        let mut rng = Rng64::seed_from_u64(seed);
        let x = Matrix::from_fn(n, 3, |_, _| rng.uniform());
        let y: Vec<f64> = (0..n).map(|_| rng.uniform_range(-5.0, 5.0)).collect();
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        let probe = Matrix::from_fn(20, 3, |_, _| rng.uniform_range(-2.0, 3.0));
        for p in tree.predict(&probe) {
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{} outside [{}, {}]", p, lo, hi);
        }
    }

    #[test]
    fn holdout_rmse_matches_manual_computation(
        seed in 0u64..1000,
        shift in -2.0f64..2.0,
    ) {
        let mut rng = Rng64::seed_from_u64(seed);
        let m = Matrix::from_fn(20, 3, |_, _| rng.uniform());
        let ds = Dataset::from_values(m.clone());
        let (_, holdout) = scis_data::metrics::make_holdout(&ds, 0.3, &mut rng);
        prop_assume!(!holdout.is_empty());
        let shifted = m.map(|v| v + shift);
        let r = holdout.rmse(&shifted);
        prop_assert!((r - shift.abs()).abs() < 1e-9, "rmse {} vs |shift| {}", r, shift.abs());
    }

    #[test]
    fn rng_sample_indices_always_distinct(
        seed in 0u64..10_000,
        n in 1usize..200,
    ) {
        let mut rng = Rng64::seed_from_u64(seed);
        let k = rng.gen_range(n) + 1;
        let idx = rng.sample_indices(n, k.min(n));
        let set: std::collections::HashSet<_> = idx.iter().collect();
        prop_assert_eq!(set.len(), idx.len());
        prop_assert!(idx.iter().all(|&i| i < n));
    }
}

#[test]
fn holdout_struct_is_reexported() {
    // compile-time check that the facade exposes the metric types
    let h = Holdout { positions: vec![(0, 0)], truth: vec![1.0] };
    assert_eq!(h.len(), 1);
}
