//! Property-style randomized tests on the core data structures and
//! invariants: mask algebra, Eq.-1 merging, normalization round-trips,
//! Sinkhorn plan marginals, divergence positivity, tree prediction bounds,
//! and metric sanity.
//!
//! The container has no cargo registry access, so instead of proptest these
//! run a fixed number of seeded trials through [`Rng64`]; failures print the
//! trial seed so a case can be replayed by pinning it.

use scis_data::mask::MaskMatrix;
use scis_data::normalize::MinMaxScaler;
use scis_data::{Dataset, Holdout};
use scis_imputers::tree::{RegressionTree, TreeConfig};
use scis_ot::{ms_divergence, SinkhornOptions};
use scis_tensor::{Matrix, Rng64};

/// Runs `cases` independent trials, each with its own deterministic seed.
fn trials(cases: u64, mut body: impl FnMut(u64, &mut Rng64)) {
    for case in 0..cases {
        let seed = 0x5c15_0000 + case;
        let mut rng = Rng64::seed_from_u64(seed);
        body(seed, &mut rng);
    }
}

/// A small matrix of finite values in [-100, 100] with random shape.
fn small_matrix(rng: &mut Rng64) -> Matrix {
    let r = rng.gen_range(7) + 1;
    let c = rng.gen_range(5) + 1;
    Matrix::from_fn(r, c, |_, _| rng.uniform_range(-100.0, 100.0))
}

fn random_bits(rng: &mut Rng64, len: usize) -> Vec<bool> {
    (0..len).map(|_| rng.bernoulli(0.5)).collect()
}

#[test]
fn mask_set_get_roundtrip() {
    trials(64, |seed, rng| {
        let m = small_matrix(rng);
        let (r, c) = m.shape();
        let bits = random_bits(rng, r * c);
        let mut mask = MaskMatrix::all_missing(r, c);
        for i in 0..r {
            for j in 0..c {
                mask.set(i, j, bits[i * c + j]);
            }
        }
        let mut count = 0usize;
        for i in 0..r {
            for j in 0..c {
                assert_eq!(mask.get(i, j), bits[i * c + j], "seed {}", seed);
                count += bits[i * c + j] as usize;
            }
        }
        assert_eq!(mask.count_observed(), count, "seed {}", seed);
    });
}

#[test]
fn merge_imputed_preserves_observed_exactly() {
    trials(64, |seed, rng| {
        let m = small_matrix(rng);
        let (r, c) = m.shape();
        let bits = random_bits(rng, r * c);
        let mut mask = MaskMatrix::all_missing(r, c);
        for i in 0..r {
            for j in 0..c {
                mask.set(i, j, bits[i * c + j]);
            }
        }
        let kinds = vec![scis_data::ColumnKind::Continuous; c];
        let ds = Dataset::from_complete(&m, mask, kinds);
        let xbar = Matrix::full(r, c, -7.25);
        let merged = ds.merge_imputed(&xbar);
        for i in 0..r {
            for j in 0..c {
                if bits[i * c + j] {
                    assert_eq!(merged[(i, j)], m[(i, j)], "seed {}", seed);
                } else {
                    assert_eq!(merged[(i, j)], -7.25, "seed {}", seed);
                }
            }
        }
    });
}

#[test]
fn minmax_roundtrip_is_lossless() {
    trials(64, |seed, rng| {
        let m = small_matrix(rng);
        let scaler = MinMaxScaler::fit(&m);
        let t = scaler.transform(&m);
        // all observed values land in [0,1]
        for v in t.as_slice() {
            assert!(
                (-1e-12..=1.0 + 1e-12).contains(v),
                "seed {}: normalized {}",
                seed,
                v
            );
        }
        let back = scaler.inverse_transform(&t);
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                "seed {}: {} vs {}",
                seed,
                a,
                b
            );
        }
    });
}

#[test]
fn sinkhorn_plan_satisfies_marginals() {
    trials(24, |seed, rng| {
        let n = rng.gen_range(8) + 2;
        let lambda = rng.uniform_range(0.05, 5.0);
        let cost = Matrix::from_fn(n, n, |_, _| rng.uniform() * 3.0);
        // ε-scaling warm starts handle the slow small-λ regime; column
        // marginals are exact after every g-update by construction, rows
        // converge — gate the strict check on reported convergence
        let opts = SinkhornOptions {
            lambda,
            max_iters: 20_000,
            tol: 1e-9,
            ..Default::default()
        };
        let res = scis_ot::sinkhorn::sinkhorn_eps_scaling_uniform(&cost, &opts, 5);
        let u = 1.0 / n as f64;
        for s in res.plan.col_sums() {
            assert!((s - u).abs() < 1e-6, "seed {}: col marginal {}", seed, s);
        }
        let row_tol = if res.converged { 1e-6 } else { 1e-3 };
        for s in res.plan.row_sums() {
            assert!(
                (s - u).abs() < row_tol,
                "seed {}: row marginal {} (converged={})",
                seed,
                s,
                res.converged
            );
        }
        for p in res.plan.as_slice() {
            assert!(*p >= 0.0 && p.is_finite(), "seed {}", seed);
        }
    });
}

#[test]
fn sinkhorn_rectangular_plans_satisfy_marginals() {
    trials(24, |seed, rng| {
        let n = rng.gen_range(6) + 2;
        let m = rng.gen_range(9) + 2; // usually n ≠ m
        let cost = Matrix::from_fn(n, m, |_, _| rng.uniform() * 3.0);
        // random positive marginals, normalized to probability vectors
        let raw_a: Vec<f64> = (0..n).map(|_| rng.uniform() + 0.05).collect();
        let raw_b: Vec<f64> = (0..m).map(|_| rng.uniform() + 0.05).collect();
        let sa: f64 = raw_a.iter().sum();
        let sb: f64 = raw_b.iter().sum();
        let a: Vec<f64> = raw_a.iter().map(|v| v / sa).collect();
        let b: Vec<f64> = raw_b.iter().map(|v| v / sb).collect();
        let opts = SinkhornOptions {
            lambda: 0.5,
            max_iters: 10_000,
            tol: 1e-10,
            ..Default::default()
        };
        let res = scis_ot::sinkhorn(&cost, &a, &b, &opts);
        assert!(res.converged, "seed {}", seed);
        for (s, want) in res.plan.col_sums().iter().zip(&b) {
            assert!(
                (s - want).abs() < 1e-7,
                "seed {}: col {} vs {}",
                seed,
                s,
                want
            );
        }
        for (s, want) in res.plan.row_sums().iter().zip(&a) {
            assert!(
                (s - want).abs() < 1e-7,
                "seed {}: row {} vs {}",
                seed,
                s,
                want
            );
        }
    });
}

#[test]
fn sinkhorn_extreme_lambda_stays_finite_and_feasible() {
    // λ = 1e-6 (near-unregularized, slow) and λ = 1e6 (near product measure)
    // are both numerically extreme; the log-domain solver must keep the plan
    // finite, nonnegative, and column-feasible in either regime
    trials(16, |seed, rng| {
        let n = rng.gen_range(6) + 2;
        let cost = Matrix::from_fn(n, n, |_, _| rng.uniform() * 3.0);
        let u = 1.0 / n as f64;
        for lambda in [1e-6, 1e6] {
            let opts = SinkhornOptions {
                lambda,
                max_iters: 500,
                tol: 1e-9,
                ..Default::default()
            };
            let res = scis_ot::sinkhorn_uniform(&cost, &opts);
            for p in res.plan.as_slice() {
                assert!(
                    p.is_finite() && *p >= 0.0,
                    "seed {} λ {}: plan {}",
                    seed,
                    lambda,
                    p
                );
            }
            assert!(res.transport_cost.is_finite(), "seed {} λ {}", seed, lambda);
            // column marginals are exact after every g-update by construction
            for s in res.plan.col_sums() {
                assert!(
                    (s - u).abs() < 1e-6,
                    "seed {} λ {}: col {}",
                    seed,
                    lambda,
                    s
                );
            }
            if lambda > 1.0 {
                // huge λ ⇒ plan ≈ a ⊗ b: every entry close to uniform
                for p in res.plan.as_slice() {
                    assert!(
                        (p - u * u).abs() < 1e-3,
                        "seed {}: entry {} far from product measure {}",
                        seed,
                        p,
                        u * u
                    );
                }
            }
        }
    });
}

#[test]
fn sinkhorn_degenerate_marginals_confine_mass() {
    // zero-mass rows/columns must receive exactly zero plan mass (and must
    // not poison the rest of the plan with NaN)
    trials(16, |seed, rng| {
        let n = rng.gen_range(5) + 3;
        let cost = Matrix::from_fn(n, n, |_, _| rng.uniform() * 2.0);
        let dead_row = rng.gen_range(n);
        let dead_col = rng.gen_range(n);
        let mut a = vec![1.0 / (n - 1) as f64; n];
        let mut b = vec![1.0 / (n - 1) as f64; n];
        a[dead_row] = 0.0;
        b[dead_col] = 0.0;
        let opts = SinkhornOptions {
            lambda: 0.3,
            max_iters: 5_000,
            tol: 1e-9,
            ..Default::default()
        };
        let res = scis_ot::sinkhorn(&cost, &a, &b, &opts);
        for j in 0..n {
            assert_eq!(
                res.plan[(dead_row, j)],
                0.0,
                "seed {}: dead row leaked",
                seed
            );
        }
        for i in 0..n {
            assert_eq!(
                res.plan[(i, dead_col)],
                0.0,
                "seed {}: dead col leaked",
                seed
            );
        }
        for p in res.plan.as_slice() {
            assert!(p.is_finite() && *p >= 0.0, "seed {}", seed);
        }
        let total: f64 = res.plan.as_slice().iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "seed {}: total mass {}",
            seed,
            total
        );
    });
}

#[test]
fn ms_divergence_nonnegative_and_zero_on_self() {
    trials(24, |seed, rng| {
        let n = rng.gen_range(6) + 2;
        let d = rng.gen_range(4) + 1;
        let a = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let b = Matrix::from_fn(n, d, |_, _| rng.uniform());
        let mask = Matrix::from_fn(n, d, |_, _| if rng.bernoulli(0.7) { 1.0 } else { 0.0 });
        let opts = SinkhornOptions {
            lambda: 0.5,
            max_iters: 3000,
            tol: 1e-10,
            ..Default::default()
        };
        let s_ab = ms_divergence(&a, &b, &mask, &opts).value;
        let s_aa = ms_divergence(&a, &a, &mask, &opts).value;
        assert!(s_ab > -1e-6, "seed {}: S(a,b) = {}", seed, s_ab);
        assert!(s_aa.abs() < 1e-6, "seed {}: S(a,a) = {}", seed, s_aa);
    });
}

#[test]
fn tree_predictions_bounded_by_targets() {
    trials(32, |seed, rng| {
        let n = rng.gen_range(50) + 10;
        let x = Matrix::from_fn(n, 3, |_, _| rng.uniform());
        let y: Vec<f64> = (0..n).map(|_| rng.uniform_range(-5.0, 5.0)).collect();
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), rng);
        let probe = Matrix::from_fn(20, 3, |_, _| rng.uniform_range(-2.0, 3.0));
        for p in tree.predict(&probe) {
            assert!(
                p >= lo - 1e-9 && p <= hi + 1e-9,
                "seed {}: {} outside [{}, {}]",
                seed,
                p,
                lo,
                hi
            );
        }
    });
}

#[test]
fn holdout_rmse_matches_manual_computation() {
    trials(32, |seed, rng| {
        let shift = rng.uniform_range(-2.0, 2.0);
        let m = Matrix::from_fn(20, 3, |_, _| rng.uniform());
        let ds = Dataset::from_values(m.clone());
        let (_, holdout) = scis_data::metrics::make_holdout(&ds, 0.3, rng);
        if holdout.is_empty() {
            return;
        }
        let shifted = m.map(|v| v + shift);
        let r = holdout.rmse(&shifted);
        assert!(
            (r - shift.abs()).abs() < 1e-9,
            "seed {}: rmse {} vs |shift| {}",
            seed,
            r,
            shift.abs()
        );
    });
}

#[test]
fn rng_sample_indices_always_distinct() {
    trials(256, |seed, rng| {
        let n = rng.gen_range(199) + 1;
        let k = rng.gen_range(n) + 1;
        let idx = rng.sample_indices(n, k.min(n));
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), idx.len(), "seed {}", seed);
        assert!(idx.iter().all(|&i| i < n), "seed {}", seed);
    });
}

#[test]
fn holdout_struct_is_reexported() {
    // compile-time check that the facade exposes the metric types
    let h = Holdout {
        positions: vec![(0, 0)],
        truth: vec![1.0],
    };
    assert_eq!(h.len(), 1);
}
