//! Fault-injection ("chaos") tests for the fault-tolerant training runtime:
//! structured errors for unusable inputs, anomaly accounting for recoverable
//! faults, and the graceful-degradation guarantee that [`Scis::try_run`]
//! never hands back a non-finite cell.

use std::cell::Cell;

use scis_core::dim::{DimConfig, GenerativeLoss, LambdaMode};
use scis_core::pipeline::{Scis, ScisConfig};
use scis_core::sse::SseConfig;
use scis_core::{train_dim_guarded, GuardConfig, GuardStats, ScisError, TrainPhase};
use scis_data::missing::inject_mcar;
use scis_data::Dataset;
use scis_imputers::{AdversarialImputer, GainImputer, Imputer, TrainConfig};
use scis_nn::Mlp;
use scis_tensor::{Matrix, Rng64};

fn correlated_table(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::seed_from_u64(seed);
    Matrix::from_fn(n, 4, |_, j| {
        let t = rng.uniform();
        match j {
            0 => t,
            1 => (0.8 * t + 0.1).clamp(0.0, 1.0),
            2 => (1.0 - t).clamp(0.0, 1.0),
            _ => (0.5 * t + 0.25).clamp(0.0, 1.0),
        }
    })
}

fn chaos_dataset(n: usize, miss: f64, seed: u64) -> Dataset {
    let complete = correlated_table(n, seed);
    let mut rng = Rng64::seed_from_u64(seed ^ 0xdead);
    inject_mcar(&complete, miss, &mut rng)
}

fn fast_config() -> ScisConfig {
    ScisConfig {
        dim: DimConfig {
            train: TrainConfig {
                epochs: 6,
                batch_size: 32,
                learning_rate: 0.005,
                dropout: 0.0,
            },
            lambda: LambdaMode::Relative(0.1),
            max_sinkhorn_iters: 100,
            alpha: 10.0,
            critic: None,
            loss: GenerativeLoss::MaskedSinkhorn,
            ..Default::default()
        },
        sse: SseConfig {
            epsilon: 0.05,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// An adversarial imputer that NaN-poisons its generator on a schedule:
/// every `poison_every`-th batch, the generator's last parameter (an
/// output-layer bias) is set to NaN before the forward pass, simulating a
/// numerically diverged update. A NaN *input* would not do — the hidden
/// ReLU (`v.max(0.0)`) silently maps NaN to 0 — but a NaN bias reaches the
/// sigmoid output unfiltered, so the reconstruction turns non-finite.
///
/// The batch schedule is armed in `generator_input` (called exactly once
/// per batch) and applied in `generator_mut`; on unpoisoned batches the
/// saved bias is restored so transient faults really are transient.
struct PoisonedGain {
    inner: GainImputer,
    calls: Cell<usize>,
    poison_every: usize,
    armed: Cell<bool>,
    saved_bias: Cell<f64>,
}

impl PoisonedGain {
    fn new(train: TrainConfig, poison_every: usize) -> Self {
        Self {
            inner: GainImputer::new(train),
            calls: Cell::new(0),
            poison_every,
            armed: Cell::new(false),
            saved_bias: Cell::new(0.0),
        }
    }
}

impl Imputer for PoisonedGain {
    fn name(&self) -> &'static str {
        "poisoned-gain"
    }
    fn impute(&mut self, ds: &Dataset, rng: &mut Rng64) -> Matrix {
        self.inner.impute(ds, rng)
    }
}

impl AdversarialImputer for PoisonedGain {
    fn init_networks(&mut self, n_features: usize, rng: &mut Rng64) {
        self.inner.init_networks(n_features, rng);
    }
    fn is_initialized(&self, n_features: usize) -> bool {
        self.inner.is_initialized(n_features)
    }
    fn generator_mut(&mut self) -> &mut Mlp {
        let armed = self.armed.get();
        let gen = self.inner.generator_mut();
        let mut p = gen.param_vector();
        let last = p.len() - 1;
        if armed && p[last].is_finite() {
            self.saved_bias.set(p[last]);
            p[last] = f64::NAN;
            gen.set_param_vector(&p);
        } else if !armed && p[last].is_nan() {
            p[last] = self.saved_bias.get();
            gen.set_param_vector(&p);
        }
        self.inner.generator_mut()
    }
    fn reconstruct(&mut self, values: &Matrix, mask: &Matrix) -> Matrix {
        self.inner.reconstruct(values, mask)
    }
    fn generator_input(&self, values: &Matrix, mask: &Matrix, rng: &mut Rng64) -> Matrix {
        let k = self.calls.get();
        self.calls.set(k + 1);
        self.armed.set(k.is_multiple_of(self.poison_every));
        self.inner.generator_input(values, mask, rng)
    }
    fn train_native(&mut self, ds: &Dataset, rng: &mut Rng64) {
        self.inner.train_native(ds, rng);
    }
}

// ---------------------------------------------------------------------------
// structured errors: states with no useful output
// ---------------------------------------------------------------------------

#[test]
fn oversized_n0_is_a_structured_error() {
    let ds = chaos_dataset(40, 0.2, 1);
    let mut rng = Rng64::seed_from_u64(1);
    let mut gain = GainImputer::new(fast_config().dim.train);
    let err = Scis::new(fast_config())
        .try_run(&mut gain, &ds, 30, &mut rng)
        .unwrap_err();
    match &err {
        ScisError::OversizedInitialSample { requested, n_total } => {
            assert_eq!(*requested, 60);
            assert_eq!(*n_total, 40);
        }
        other => panic!("expected OversizedInitialSample, got {other}"),
    }
    // legacy panic-message contract
    assert!(err.to_string().contains("exceeds"), "message: {err}");
}

#[test]
fn zero_n0_and_zero_epochs_are_invalid_config() {
    let ds = chaos_dataset(40, 0.2, 2);
    let mut rng = Rng64::seed_from_u64(2);
    let mut gain = GainImputer::new(fast_config().dim.train);
    let err = Scis::new(fast_config())
        .try_run(&mut gain, &ds, 0, &mut rng)
        .unwrap_err();
    assert!(matches!(err, ScisError::InvalidConfig { .. }), "got {err}");

    let mut cfg = fast_config();
    cfg.dim.train.epochs = 0;
    let err = Scis::new(cfg)
        .try_run(&mut gain, &ds, 10, &mut rng)
        .unwrap_err();
    assert!(matches!(err, ScisError::InvalidConfig { .. }), "got {err}");
}

#[test]
fn non_finite_observed_cell_is_a_data_error() {
    // NaN marks "missing", but an observed Inf is corrupt data and must be
    // rejected before any training starts
    let mut values = correlated_table(40, 3);
    values[(7, 2)] = f64::INFINITY;
    let ds = Dataset::from_values(values);
    let mut rng = Rng64::seed_from_u64(3);
    let mut gain = GainImputer::new(fast_config().dim.train);
    let err = Scis::new(fast_config())
        .try_run(&mut gain, &ds, 10, &mut rng)
        .unwrap_err();
    match &err {
        ScisError::Data(e) => {
            let msg = e.to_string();
            assert!(msg.contains("(7, 2)"), "message: {msg}");
        }
        other => panic!("expected Data error, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// survivable pathologies: degraded or anomalous but finite output
// ---------------------------------------------------------------------------

#[test]
fn degenerate_columns_are_flagged_and_survivable() {
    let mut values = correlated_table(120, 4);
    let mut rng = Rng64::seed_from_u64(4);
    for i in 0..120 {
        values[(i, 2)] = f64::NAN; // column 2: never observed
        values[(i, 3)] = 0.5; // column 3: constant
        if rng.bernoulli(0.15) {
            values[(i, 0)] = f64::NAN;
        }
        if rng.bernoulli(0.15) {
            values[(i, 1)] = f64::NAN;
        }
    }
    let ds = Dataset::from_values(values);
    let mut gain = GainImputer::new(fast_config().dim.train);
    let outcome = Scis::new(fast_config())
        .try_run(&mut gain, &ds, 24, &mut rng)
        .unwrap();
    assert!(
        outcome.anomalies.all_missing_columns.contains(&2),
        "{:?}",
        outcome.anomalies
    );
    assert!(
        outcome.anomalies.constant_columns.contains(&3),
        "{:?}",
        outcome.anomalies
    );
    assert!(outcome.imputed.as_slice().iter().all(|v| v.is_finite()));
    for (i, j, v) in ds.observed_cells() {
        assert_eq!(
            outcome.imputed[(i, j)],
            v,
            "observed cell modified at ({i},{j})"
        );
    }
}

#[test]
fn heavy_missingness_survives_with_finite_output() {
    let ds = chaos_dataset(160, 0.95, 5);
    let mut rng = Rng64::seed_from_u64(5);
    let mut gain = GainImputer::new(fast_config().dim.train);
    let outcome = Scis::new(fast_config())
        .try_run(&mut gain, &ds, 24, &mut rng)
        .unwrap();
    assert!(outcome.imputed.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn extreme_magnitudes_survive_with_finite_output() {
    // unnormalized input at 1e6 scale — squared costs reach 1e12+
    let values = correlated_table(120, 6).map(|v| v * 1.0e6);
    let mut rng = Rng64::seed_from_u64(6);
    let ds = inject_mcar(&values, 0.2, &mut rng);
    let mut gain = GainImputer::new(fast_config().dim.train);
    let outcome = Scis::new(fast_config())
        .try_run(&mut gain, &ds, 24, &mut rng)
        .unwrap();
    assert!(outcome.imputed.as_slice().iter().all(|v| v.is_finite()));
}

// ---------------------------------------------------------------------------
// injected faults: anomaly accounting and recovery rings
// ---------------------------------------------------------------------------

#[test]
fn transient_nan_batches_are_skipped_and_counted() {
    let ds = chaos_dataset(160, 0.2, 7);
    let cfg = fast_config();
    let mut rng = Rng64::seed_from_u64(7);
    // every 3rd generator input is NaN — each poisoned batch must be
    // dropped, counted, and training must still complete all epochs
    let mut poisoned = PoisonedGain::new(cfg.dim.train, 3);
    let mut stats = GuardStats::default();
    let report = train_dim_guarded(
        &mut poisoned,
        &ds,
        &cfg.dim,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        &mut rng,
    )
    .expect("transient poisoning must be survivable");
    assert_eq!(report.epoch_losses.len(), cfg.dim.train.epochs);
    assert!(stats.nan_batches_skipped > 0, "no skips counted: {stats:?}");
    assert!(report.final_loss().is_finite());
}

#[test]
fn total_poisoning_degrades_to_mean_fallback() {
    let ds = chaos_dataset(120, 0.2, 8);
    let cfg = fast_config();
    let mut rng = Rng64::seed_from_u64(8);
    // every batch is poisoned: all three recovery rings fail and try_run
    // must degrade to mean imputation rather than return NaN or panic
    let mut poisoned = PoisonedGain::new(cfg.dim.train, 1);
    let outcome = Scis::new(cfg)
        .try_run(&mut poisoned, &ds, 24, &mut rng)
        .unwrap();
    assert!(outcome.anomalies.mean_fallback, "{:?}", outcome.anomalies);
    assert!(outcome.anomalies.is_degraded());
    assert!(!outcome.anomalies.is_clean());
    assert!(outcome.anomalies.nan_batches_skipped > 0);
    assert!(outcome.anomalies.rollbacks > 0);
    assert!(!outcome.anomalies.notes.is_empty());
    assert!(outcome.imputed.as_slice().iter().all(|v| v.is_finite()));
    for (i, j, v) in ds.observed_cells() {
        assert_eq!(
            outcome.imputed[(i, j)],
            v,
            "observed cell modified at ({i},{j})"
        );
    }
    // no retrain happened — the outcome reports the skipped SSE honestly
    assert_eq!(outcome.n_star, 24);
}

#[test]
fn starved_sinkhorn_budget_triggers_escalation() {
    let ds = chaos_dataset(160, 0.2, 9);
    let mut cfg = fast_config();
    cfg.dim.max_sinkhorn_iters = 2; // far too few to converge at tol 1e-8
    let mut rng = Rng64::seed_from_u64(9);
    let mut gain = GainImputer::new(cfg.dim.train);
    let mut stats = GuardStats::default();
    let report = train_dim_guarded(
        &mut gain,
        &ds,
        &cfg.dim,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        &mut rng,
    )
    .expect("starved sinkhorn must be survivable");
    assert!(
        stats.sinkhorn.escalations > 0,
        "no escalations recorded: {stats:?}"
    );
    assert!(report.final_loss().is_finite());
}

#[test]
fn rollback_invalidates_the_dual_cache() {
    use scis_core::{train_dim_cached, AccelConfig};
    use scis_ot::DualCache;
    use scis_telemetry::Telemetry;

    let ds = chaos_dataset(160, 0.2, 11);
    let mut cfg = fast_config();
    cfg.dim.accel = AccelConfig::default().warm_start(true);
    let mut rng = Rng64::seed_from_u64(11);
    // every batch poisoned: each epoch is rejected and rolled back, and
    // every rollback must drop the cached duals — they describe generator
    // states that no longer exist after the parameter rewind
    let mut poisoned = PoisonedGain::new(cfg.dim.train, 1);
    let mut stats = GuardStats::default();
    let cache = DualCache::enabled();
    let result = train_dim_cached(
        &mut poisoned,
        &ds,
        &cfg.dim,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        &Telemetry::off(),
        &cache,
        &mut rng,
    );
    assert!(result.is_err(), "total poisoning must exhaust the guard");
    assert!(stats.rollbacks > 0, "no rollbacks recorded: {stats:?}");
    let cs = cache.stats();
    assert!(
        cs.invalidations >= stats.rollbacks,
        "rollbacks {} but only {} cache invalidations",
        stats.rollbacks,
        cs.invalidations
    );
}

#[test]
fn accelerated_training_survives_transient_poisoning() {
    use scis_core::{train_dim_cached, AccelConfig};
    use scis_ot::DualCache;
    use scis_telemetry::Telemetry;

    let ds = chaos_dataset(160, 0.2, 12);
    let mut cfg = fast_config();
    cfg.dim.accel = AccelConfig::all();
    let mut rng = Rng64::seed_from_u64(12);
    let mut poisoned = PoisonedGain::new(cfg.dim.train, 3);
    let mut stats = GuardStats::default();
    let cache = DualCache::enabled();
    let report = train_dim_cached(
        &mut poisoned,
        &ds,
        &cfg.dim,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        &Telemetry::off(),
        &cache,
        &mut rng,
    )
    .expect("transient poisoning must be survivable with accel on");
    assert_eq!(report.epoch_losses.len(), cfg.dim.train.epochs);
    assert!(stats.nan_batches_skipped > 0, "no skips counted: {stats:?}");
    assert!(report.final_loss().is_finite());
}

#[test]
fn degraded_run_carries_flight_recorder_tail() {
    use scis_telemetry::{Event, Telemetry};

    let ds = chaos_dataset(120, 0.2, 8);
    let cfg = fast_config();
    let mut rng = Rng64::seed_from_u64(8);
    let mut poisoned = PoisonedGain::new(cfg.dim.train, 1);
    let tel = Telemetry::collecting();
    let outcome = Scis::new(cfg)
        .telemetry(tel)
        .try_run(&mut poisoned, &ds, 24, &mut rng)
        .unwrap();
    assert!(outcome.anomalies.mean_fallback, "{:?}", outcome.anomalies);
    // the degraded outcome ships its own post-mortem: a non-empty event
    // tail ending in the Degraded marker, with the rollbacks that led there
    assert!(!outcome.flight_tail.is_empty(), "flight tail empty");
    let last = outcome.flight_tail.last().unwrap();
    assert!(
        matches!(last.event, Event::Degraded { reason } if reason == "mean_fallback"),
        "last event: {:?}",
        last
    );
    assert!(
        outcome
            .flight_tail
            .iter()
            .any(|r| matches!(r.event, Event::Rollback { .. })),
        "no rollback events in the tail"
    );
    // sequence numbers are monotonic, so truncation stays visible
    for pair in outcome.flight_tail.windows(2) {
        assert!(pair[1].seq > pair[0].seq);
    }
}

#[test]
fn training_error_carries_post_mortem_tail() {
    use scis_core::{train_dim_cached, AccelConfig};
    use scis_ot::DualCache;
    use scis_telemetry::{Event, Telemetry};

    let ds = chaos_dataset(120, 0.2, 13);
    let mut cfg = fast_config();
    cfg.dim.accel = AccelConfig::default();
    let mut rng = Rng64::seed_from_u64(13);
    let mut poisoned = PoisonedGain::new(cfg.dim.train, 1);
    let mut stats = GuardStats::default();
    let tel = Telemetry::collecting();
    let err = train_dim_cached(
        &mut poisoned,
        &ds,
        &cfg.dim,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        &tel,
        &DualCache::off(),
        &mut rng,
    )
    .expect_err("total poisoning must exhaust the guard");
    assert!(!err.post_mortem.is_empty(), "post-mortem empty");
    assert!(
        err.post_mortem
            .iter()
            .any(|r| matches!(r.event, Event::Rollback { .. })),
        "no rollback events in the post-mortem"
    );
    // with telemetry off the error still surfaces, just without the tail
    let mut rng = Rng64::seed_from_u64(13);
    let mut poisoned = PoisonedGain::new(cfg.dim.train, 1);
    let mut stats = GuardStats::default();
    let err = train_dim_cached(
        &mut poisoned,
        &ds,
        &cfg.dim,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        &Telemetry::off(),
        &DualCache::off(),
        &mut rng,
    )
    .expect_err("total poisoning must exhaust the guard");
    assert!(err.post_mortem.is_empty());
}

// ---------------------------------------------------------------------------
// crash-safe checkpointing, deadline watchdog, kill-and-resume determinism
// ---------------------------------------------------------------------------

/// A fresh per-test checkpoint directory under the system temp dir.
fn ckpt_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scis_chaos_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The resume determinism contract (DESIGN.md §14): interrupt training with
/// a deterministic deadline trip, resume a *fresh* process-equivalent run
/// from the emergency checkpoint, and the final imputations must be
/// bit-identical to an uninterrupted run — at any thread count.
#[test]
fn kill_and_resume_is_bit_identical() {
    use scis_core::{latest_checkpoint, CheckpointPolicy, TrainCheckpoint};
    use scis_tensor::{ExecPolicy, RunDeadline};

    for (pi, policy) in [ExecPolicy::Serial, ExecPolicy::threads(4)]
        .into_iter()
        .enumerate()
    {
        let ds = chaos_dataset(160, 0.2, 21);

        // uninterrupted baseline
        let mut rng = Rng64::seed_from_u64(21);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let baseline = Scis::new(fast_config().exec(policy))
            .try_run(&mut gain, &ds, 24, &mut rng)
            .unwrap();

        // interrupted run: the deadline trips mid-training, the trainer
        // stops at the last clean epoch boundary and writes an emergency
        // checkpoint
        let dir = ckpt_dir(&format!("resume_{}", pi));
        let mut rng = Rng64::seed_from_u64(21);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let interrupted = Scis::new(fast_config().exec(policy))
            .checkpoints(CheckpointPolicy::new(&dir))
            .deadline(RunDeadline::trip_after(40))
            .try_run(&mut gain, &ds, 24, &mut rng)
            .unwrap();
        assert!(
            interrupted.anomalies.deadline_exceeded,
            "deadline did not trip: {:?}",
            interrupted.anomalies
        );
        assert!(
            !interrupted.anomalies.is_degraded(),
            "deadline expiry must not count as degradation: {:?}",
            interrupted.anomalies
        );
        assert!(interrupted.imputed.as_slice().iter().all(|v| v.is_finite()));

        let path = latest_checkpoint(&dir).expect("no checkpoint on disk");
        let ckpt = TrainCheckpoint::load(&path).expect("checkpoint must load");
        assert_eq!(ckpt.phase, TrainPhase::Initial);
        assert!(
            ckpt.epoch < fast_config().dim.train.epochs,
            "trip landed after training finished (epoch {}); lower the budget",
            ckpt.epoch
        );

        // fresh run resumed from the checkpoint: replays deterministically
        // up to the checkpointed phase, fast-forwards, finishes the rest
        let mut rng = Rng64::seed_from_u64(21);
        let mut gain = GainImputer::new(fast_config().dim.train);
        let resumed = Scis::new(fast_config().exec(policy))
            .resume_from(ckpt)
            .try_run(&mut gain, &ds, 24, &mut rng)
            .unwrap();

        assert_eq!(resumed.n_star, baseline.n_star, "n* diverged on resume");
        let b = baseline.imputed.as_slice();
        let r = resumed.imputed.as_slice();
        assert_eq!(b.len(), r.len());
        for (i, (x, y)) in b.iter().zip(r).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "imputation diverged at flat index {} ({:?}): {} vs {}",
                i,
                policy,
                x,
                y
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Deadline expiry is a graceful finish, not a failure: finite output from
/// the best model so far, an emergency checkpoint on disk, and DeadlineHit/
/// Checkpoint markers in the flight-recorder tail.
#[test]
fn deadline_expiry_finishes_gracefully() {
    use scis_core::{latest_checkpoint, CheckpointPolicy};
    use scis_telemetry::{Event, Telemetry};
    use scis_tensor::RunDeadline;

    let ds = chaos_dataset(160, 0.2, 22);
    let dir = ckpt_dir("deadline");
    let tel = Telemetry::collecting();
    let mut rng = Rng64::seed_from_u64(22);
    let mut gain = GainImputer::new(fast_config().dim.train);
    let outcome = Scis::new(fast_config())
        .checkpoints(CheckpointPolicy::new(&dir))
        .deadline(RunDeadline::trip_after(40))
        .telemetry(tel)
        .try_run(&mut gain, &ds, 24, &mut rng)
        .unwrap();
    assert!(
        outcome.anomalies.deadline_exceeded,
        "{:?}",
        outcome.anomalies
    );
    assert!(!outcome.anomalies.is_clean());
    assert!(
        !outcome.anomalies.is_degraded(),
        "deadline expiry is not degradation: {:?}",
        outcome.anomalies
    );
    assert!(outcome.imputed.as_slice().iter().all(|v| v.is_finite()));
    assert!(
        outcome
            .anomalies
            .notes
            .iter()
            .any(|n| n.contains("deadline")),
        "no deadline note: {:?}",
        outcome.anomalies.notes
    );
    // SSE was skipped — training sample stays at n0
    assert_eq!(outcome.n_star, 24);
    // an emergency checkpoint is on disk and loads cleanly
    let path = latest_checkpoint(&dir).expect("no checkpoint on disk");
    assert!(scis_core::TrainCheckpoint::load(&path).is_ok());
    // the deadline-hit post-mortem rides in the flight tail
    assert!(
        outcome
            .flight_tail
            .iter()
            .any(|r| matches!(r.event, Event::DeadlineHit { .. })),
        "no DeadlineHit in the flight tail"
    );
    assert!(
        outcome.flight_tail.iter().any(|r| matches!(
            r.event,
            Event::Checkpoint {
                emergency: true,
                ..
            }
        )),
        "no emergency Checkpoint in the flight tail"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming with a checkpoint that does not fit the model is a typed,
/// pre-training error — not a panic, not silent corruption.
#[test]
fn resume_mismatch_is_a_typed_error() {
    use scis_core::{
        latest_checkpoint, train_dim_resumable, CheckpointPolicy, FailureReason, TrainCheckpoint,
        TrainHooks,
    };
    use scis_ot::DualCache;
    use scis_telemetry::Telemetry;

    let ds = chaos_dataset(80, 0.2, 23);
    let cfg = fast_config();
    let dir = ckpt_dir("mismatch");
    let policy = CheckpointPolicy::new(&dir);

    // produce a legitimate checkpoint
    let mut rng = Rng64::seed_from_u64(23);
    let mut gain = GainImputer::new(cfg.dim.train);
    let mut stats = GuardStats::default();
    let hooks = TrainHooks {
        checkpoint: Some(&policy),
        ..Default::default()
    };
    train_dim_resumable(
        &mut gain,
        &ds,
        &cfg.dim,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        &Telemetry::off(),
        &DualCache::off(),
        &hooks,
        &mut rng,
    )
    .expect("clean training must succeed");
    let path = latest_checkpoint(&dir).expect("no checkpoint written");
    let mut ckpt = TrainCheckpoint::load(&path).unwrap();

    // truncate the parameter vector — as if the checkpoint came from a
    // different architecture
    ckpt.gen_params.pop();
    let mut rng = Rng64::seed_from_u64(23);
    let mut gain = GainImputer::new(cfg.dim.train);
    let mut stats = GuardStats::default();
    let hooks = TrainHooks {
        resume: Some(&ckpt),
        ..Default::default()
    };
    let err = train_dim_resumable(
        &mut gain,
        &ds,
        &cfg.dim,
        &GuardConfig::default(),
        TrainPhase::Initial,
        &mut stats,
        &Telemetry::off(),
        &DualCache::off(),
        &hooks,
        &mut rng,
    )
    .expect_err("mismatched checkpoint must be rejected");
    assert!(
        matches!(err.reason, FailureReason::ResumeMismatch { .. }),
        "wrong reason: {}",
        err.reason
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_run_reports_no_anomalies() {
    let ds = chaos_dataset(120, 0.15, 10);
    let mut rng = Rng64::seed_from_u64(10);
    let mut gain = GainImputer::new(fast_config().dim.train);
    let outcome = Scis::new(fast_config())
        .try_run(&mut gain, &ds, 24, &mut rng)
        .unwrap();
    assert!(!outcome.anomalies.is_degraded(), "{:?}", outcome.anomalies);
    assert!(
        outcome.anomalies.notes.is_empty(),
        "{:?}",
        outcome.anomalies.notes
    );
    assert!(outcome.imputed.as_slice().iter().all(|v| v.is_finite()));
}
