//! The telemetry layer's two contracts, end to end:
//!
//! 1. **Determinism-neutral.** Attaching a collector never changes the
//!    imputation output, and counter totals are identical between serial
//!    and threaded execution — every counted event happens at the same
//!    logical program point regardless of [`ExecPolicy`] (only span
//!    timings may differ).
//! 2. **Structured reporting.** A collecting run returns a populated
//!    [`RunReport`] (non-empty phases, consistent solve counters, an SSE
//!    search trace) that serializes to well-formed JSON; a disabled run
//!    returns the structural fields only.

use scis_data::missing::inject_mcar;
use scis_data::{ChunkedDataset, MemorySink};
use scis_repro::prelude::*;
use scis_repro::telemetry::{Counter, Event, Hist, RecordedEvent};

fn correlated_table(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, 4);
    for i in 0..n {
        let t = rng.uniform();
        m[(i, 0)] = t;
        m[(i, 1)] = (0.8 * t + 0.1 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        m[(i, 2)] = (1.0 - t + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        m[(i, 3)] = (0.5 * t + 0.25 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
    }
    m
}

fn fast_config(exec: ExecPolicy) -> ScisConfig {
    ScisConfig::default()
        .dim(
            DimConfig::default().train(
                TrainConfig::default()
                    .epochs(8)
                    .batch_size(64)
                    .learning_rate(0.005)
                    .dropout(0.0),
            ),
        )
        .epsilon(0.02)
        .exec(exec)
}

/// One seeded run; returns the imputed matrix and the (possibly empty)
/// counter snapshot.
fn run_pipeline(exec: ExecPolicy, tel: Telemetry) -> (Matrix, usize, [u64; Counter::ALL.len()]) {
    let complete = correlated_table(400, 11);
    let mut rng = Rng64::seed_from_u64(12);
    let ds = inject_mcar(&complete, 0.25, &mut rng);
    let mut gain = GainImputer::new(fast_config(exec).dim.train);
    let outcome = Scis::new(fast_config(exec))
        .telemetry(tel.clone())
        .try_run(&mut gain, &ds, 80, &mut rng)
        .expect("pipeline run failed");
    (
        outcome.imputed,
        outcome.n_star,
        tel.snapshot().counter_values(),
    )
}

/// Streamed twin of [`run_pipeline`]: same table, same seeds, same config,
/// but fed through [`Scis::try_run_streamed`] over an in-memory chunked
/// source into a memory sink.
fn run_pipeline_streamed(
    exec: ExecPolicy,
    tel: Telemetry,
    chunk_rows: usize,
) -> (Matrix, usize, [u64; Counter::ALL.len()]) {
    let complete = correlated_table(400, 11);
    let mut rng = Rng64::seed_from_u64(12);
    let ds = inject_mcar(&complete, 0.25, &mut rng);
    let src = ChunkedDataset::new(&ds, chunk_rows);
    let mut gain = GainImputer::new(fast_config(exec).dim.train);
    let mut sink = MemorySink::new();
    let out = Scis::new(fast_config(exec))
        .telemetry(tel.clone())
        .try_run_streamed(&mut gain, &src, 80, &mut rng, &mut sink)
        .expect("streamed pipeline run failed");
    (
        sink.into_matrix(),
        out.n_star,
        tel.snapshot().counter_values(),
    )
}

/// The recorded event stream with its only wall-clock-valued field
/// (`PhaseEnd::secs`) zeroed, so full sequences compare bit-for-bit
/// across runs.
fn normalized_events(tel: &Telemetry) -> Vec<RecordedEvent> {
    tel.events()
        .into_iter()
        .map(|mut r| {
            if let Event::PhaseEnd { secs, .. } = &mut r.event {
                *secs = 0.0;
            }
            r
        })
        .collect()
}

#[test]
fn streamed_pipeline_matches_in_memory_telemetry() {
    for exec in [ExecPolicy::Serial, ExecPolicy::threads(4)] {
        let tel_mem = Telemetry::collecting();
        let tel_str = Telemetry::collecting();
        let (imp_mem, n_mem, counters_mem) = run_pipeline(exec, tel_mem.clone());
        // one 400-row chunk: the streamed run imputes in a single shard, so
        // it does exactly as many forward passes as the in-memory run and
        // every counter must match exactly
        let (imp_str, n_str, counters_str) = run_pipeline_streamed(exec, tel_str.clone(), 400);
        assert_eq!(imp_mem, imp_str, "imputed output diverged ({exec:?})");
        assert_eq!(n_mem, n_str, "n* diverged ({exec:?})");
        for (c, (a, b)) in Counter::ALL
            .iter()
            .zip(counters_mem.iter().zip(&counters_str))
        {
            assert_eq!(
                a,
                b,
                "counter {} diverged in-memory vs streamed ({exec:?})",
                c.name()
            );
        }
        let ev_mem = normalized_events(&tel_mem);
        let ev_str = normalized_events(&tel_str);
        assert!(!ev_mem.is_empty(), "no events recorded");
        assert_eq!(ev_mem, ev_str, "event sequences diverged ({exec:?})");
    }
}

#[test]
fn streamed_telemetry_is_identical_across_exec_policies() {
    // multi-shard this time (100-row chunks -> 4 shards): the parallel and
    // serial streamed runs must agree with each other bit-for-bit even when
    // the impute phase runs shard by shard
    let tel_s = Telemetry::collecting();
    let tel_p = Telemetry::collecting();
    let (imp_s, n_s, counters_s) = run_pipeline_streamed(ExecPolicy::Serial, tel_s.clone(), 100);
    let (imp_p, n_p, counters_p) =
        run_pipeline_streamed(ExecPolicy::threads(4), tel_p.clone(), 100);
    assert_eq!(imp_s, imp_p, "streamed imputed output diverged");
    assert_eq!(n_s, n_p, "streamed n* diverged");
    assert_eq!(counters_s, counters_p, "streamed counters diverged");
    assert_eq!(
        normalized_events(&tel_s),
        normalized_events(&tel_p),
        "streamed event sequences diverged"
    );
}

#[test]
fn counters_are_identical_across_exec_policies() {
    let (imp_s, n_s, counters_s) = run_pipeline(ExecPolicy::Serial, Telemetry::collecting());
    let (imp_p, n_p, counters_p) = run_pipeline(ExecPolicy::threads(4), Telemetry::collecting());
    assert_eq!(imp_s, imp_p, "imputed output diverged");
    assert_eq!(n_s, n_p, "n* diverged");
    assert_eq!(
        counters_s, counters_p,
        "counter totals must be policy-independent"
    );
    // the counters actually saw the run
    assert!(counters_s.iter().any(|&v| v > 0), "all counters zero");
}

#[test]
fn collecting_telemetry_does_not_perturb_the_output() {
    let (imp_off, n_off, counters_off) = run_pipeline(ExecPolicy::Serial, Telemetry::off());
    let (imp_on, n_on, _) = run_pipeline(ExecPolicy::Serial, Telemetry::collecting());
    assert_eq!(imp_off, imp_on, "recording changed the imputation");
    assert_eq!(n_off, n_on);
    assert_eq!(
        counters_off,
        [0u64; Counter::ALL.len()],
        "off collector recorded something"
    );
}

#[test]
fn run_report_is_populated_and_consistent() {
    let complete = correlated_table(400, 11);
    let mut rng = Rng64::seed_from_u64(12);
    let ds = inject_mcar(&complete, 0.25, &mut rng);
    let cfg = fast_config(ExecPolicy::Serial);
    let mut gain = GainImputer::new(cfg.dim.train);
    let outcome = Scis::new(cfg)
        .telemetry(Telemetry::collecting())
        .try_run(&mut gain, &ds, 80, &mut rng)
        .expect("pipeline run failed");
    let r = &outcome.report;

    assert_eq!(r.n_total, 400);
    assert_eq!(r.n0, 80);
    assert_eq!(r.n_star, outcome.n_star);
    assert!(!r.phases.is_empty(), "phases must be recorded");
    assert!(!r.counters.is_empty(), "counters must be recorded");
    // every pipeline phase that must have happened was timed exactly once
    for phase in ["validate", "train_initial", "sse", "impute"] {
        let p = r
            .phases
            .iter()
            .find(|p| p.name == phase)
            .unwrap_or_else(|| panic!("missing phase {phase}"));
        assert_eq!(p.count, 1, "phase {phase} timed {} times", p.count);
    }
    // solve accounting is internally consistent
    let solves = r.counter("sinkhorn_solves").unwrap();
    let converged = r.counter("sinkhorn_converged").unwrap();
    let unconverged = r.counter("sinkhorn_unconverged").unwrap();
    assert!(solves > 0, "no sinkhorn solves counted");
    assert_eq!(solves, converged + unconverged, "solve outcomes must sum");
    assert!(r.counter("sinkhorn_iterations").unwrap() >= solves);
    assert!(r.counter("dim_epochs").unwrap() > 0);
    assert!(r.counter("dim_batches").unwrap() > 0);
    assert!(r.counter("nn_forwards").unwrap() > 0);
    assert!(r.counter("nn_backwards").unwrap() > 0);
    // SSE search trace matches the probe counter and the outcome
    assert_eq!(r.sse_trace.len() as u64, r.counter("sse_probes").unwrap());
    assert_eq!(r.sse_trace.len(), outcome.sse.probes);
    assert!(r.sse_trace.iter().any(|p| p.n == outcome.n_star));
    // flight-recorder sections (schema v2) saw the run
    assert!(!r.histograms.is_empty(), "histograms must be recorded");
    assert!(!r.series.is_empty(), "series must be recorded");
    assert!(r.events_recorded > 0, "no flight-recorder events");
    let solve_hist = r.histogram("sinkhorn_solve_iters").unwrap();
    assert!(solve_hist.count > 0, "no per-solve iterations observed");
    assert_eq!(
        solve_hist.buckets.iter().map(|b| b.2).sum::<u64>(),
        solve_hist.count
    );
    let loss = r.series("dim_loss").unwrap();
    assert!(!loss.is_empty(), "no per-epoch loss series");
    assert!(loss.iter().all(|v| v.is_finite()));
    // JSON serialization is self-consistent
    let json = r.to_json();
    assert!(json.contains("\"schema_version\":3"));
    assert!(json.contains("\"deadline_exceeded\":false"));
    assert!(json.contains(&format!("\"n_star\":{}", outcome.n_star)));
    assert!(json.contains(&format!("\"sinkhorn_solves\":{solves}")));
    assert!(json.contains("\"histograms\""));
    assert!(json.contains("\"series\""));
    assert!(json.contains("\"events_recorded\""));
}

#[test]
fn series_and_value_histograms_are_bit_identical_across_exec_policies() {
    let tel_s = Telemetry::collecting();
    let tel_p = Telemetry::collecting();
    let (imp_s, ..) = run_pipeline(ExecPolicy::Serial, tel_s.clone());
    let (imp_p, ..) = run_pipeline(ExecPolicy::threads(4), tel_p.clone());
    assert_eq!(imp_s, imp_p, "imputed output diverged");
    let snap_s = tel_s.snapshot();
    let snap_p = tel_p.snapshot();
    // every metric series, bit-for-bit (to_bits so a NaN regression would
    // still compare, instead of vacuously failing NaN != NaN)
    for ((name, a), (_, b)) in snap_s.series_iter().zip(snap_p.series_iter()) {
        assert_eq!(a.len(), b.len(), "series {name} length diverged");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "series {name}[{i}] diverged: {x} vs {y}"
            );
        }
    }
    // the iteration-valued histogram is in the determinism contract,
    // bucket for bucket; duration histograms only promise equal counts
    for h in Hist::ALL {
        let hs = snap_s.hist(h);
        let hp = snap_p.hist(h);
        assert_eq!(hs.count, hp.count, "hist {} count diverged", h.name());
        if h.is_deterministic() {
            assert_eq!(hs.sum, hp.sum, "hist {} sum diverged", h.name());
            assert_eq!(hs.buckets, hp.buckets, "hist {} buckets diverged", h.name());
        }
    }
    let solve = snap_s.hist(Hist::SinkhornSolveIters);
    assert!(solve.count > 0, "no per-solve iterations observed");
    // the typed event stream fires at the same logical points
    assert_eq!(snap_s.events_recorded(), snap_p.events_recorded());
    assert!(snap_s.events_recorded() > 0);
}

#[test]
fn disabled_telemetry_yields_structural_report_only() {
    let complete = correlated_table(400, 11);
    let mut rng = Rng64::seed_from_u64(12);
    let ds = inject_mcar(&complete, 0.25, &mut rng);
    let cfg = fast_config(ExecPolicy::Serial);
    let mut gain = GainImputer::new(cfg.dim.train);
    let outcome = Scis::new(cfg)
        .try_run(&mut gain, &ds, 80, &mut rng)
        .expect("pipeline run failed");
    let r = &outcome.report;
    assert!(r.phases.is_empty());
    assert!(r.counters.is_empty());
    assert!(r.histograms.is_empty());
    assert!(r.series.is_empty());
    assert_eq!(r.events_recorded, 0);
    // the structural fields are still filled
    assert_eq!(r.n_total, 400);
    assert_eq!(r.n_star, outcome.n_star);
    assert_eq!(r.sse_trace.len(), outcome.sse.probes);
}

#[test]
fn try_run_surfaces_oversized_n0_as_error() {
    let complete = correlated_table(100, 9);
    let mut rng = Rng64::seed_from_u64(10);
    let ds = inject_mcar(&complete, 0.2, &mut rng);
    let cfg = fast_config(ExecPolicy::Serial);
    let mut gain = GainImputer::new(cfg.dim.train);
    let err = Scis::new(cfg)
        .try_run(&mut gain, &ds, 80, &mut rng)
        .expect_err("2*n0 > N must be rejected");
    assert!(err.to_string().contains("exceeds N"), "got: {err}");
}
