//! Overhead contract of the disabled collector: `Telemetry::off` must add
//! **zero heap allocations** on hot paths (per-batch, per-solve, per-span),
//! so leaving telemetry hooks compiled into the kernels costs nothing in
//! production runs.
//!
//! This test binary installs a counting wrapper around the system allocator
//! (a `#[global_allocator]` is per-binary, which is why this lives in its
//! own integration-test file) and drives every record method of a disabled
//! handle.

use scis_repro::telemetry::{Counter, Event, Hist, RateWindow, Series, SpanKind, Telemetry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_collector_allocates_nothing_on_record_paths() {
    let tel = Telemetry::off();
    let clone = tel.clone(); // cloning a None handle is allocation-free too

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        tel.incr(Counter::DimBatches);
        tel.add(Counter::SinkhornIterations, 37);
        clone.incr(Counter::NnForwards);
        tel.record_span(SpanKind::Sse, std::time::Duration::from_nanos(1));
        let guard = tel.span(SpanKind::TrainInitial);
        drop(guard);
        // flight-recorder paths share the zero-alloc-when-off contract
        tel.push_series(Series::DimLoss, 0.25);
        tel.record_hist(Hist::SinkhornSolveIters, 37);
        tel.record_hist_duration(Hist::BatchStepNanos, std::time::Duration::from_nanos(9));
        tel.record_event(Event::CacheInvalidation);
        clone.record_event(Event::Rollback {
            epoch: 3,
            retries: 1,
        });
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled telemetry allocated {} times across 50k record calls",
        after - before
    );
    // and recorded nothing, of course
    assert_eq!(tel.counter(Counter::DimBatches), 0);
    assert_eq!(tel.span_count(SpanKind::TrainInitial), 0);
    assert!(tel.series(Series::DimLoss).is_empty());
    assert_eq!(tel.hist(Hist::SinkhornSolveIters).count, 0);
    assert_eq!(tel.events_recorded(), 0);
}

#[test]
fn disabled_rate_window_allocates_nothing() {
    let rate = RateWindow::off();
    let clone = rate.clone();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        rate.record(4);
        clone.record(1);
        let _ = rate.per_sec();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled rate window allocated {} times",
        after - before
    );
    assert_eq!(rate.per_sec(), 0.0);
}

#[test]
fn collecting_rate_window_records_without_allocating() {
    let rate = RateWindow::collecting();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        rate.record(2);
        let _ = rate.per_sec();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "rate window hot path allocated {} times",
        after - before
    );
    assert!(rate.per_sec() > 0.0, "recorded rows must show up");
}

#[test]
fn collecting_allocates_only_at_construction() {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let tel = Telemetry::collecting();
    let construction = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(construction >= 1, "slab must be heap-allocated");

    let hot_before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        tel.incr(Counter::DimBatches);
        tel.add(Counter::SinkhornIterations, 37);
        tel.record_span(SpanKind::Sse, std::time::Duration::from_nanos(1));
        // histogram slabs are atomics, the event ring is preallocated —
        // both stay allocation-free even while collecting (series pushes
        // are excluded: they grow per epoch, not per batch/solve)
        tel.record_hist(Hist::SinkhornSolveIters, 37);
        tel.record_event(Event::CacheInvalidation);
    }
    let hot = ALLOCATIONS.load(Ordering::Relaxed) - hot_before;
    assert_eq!(hot, 0, "record paths of a live collector allocated {hot}x");
    assert_eq!(tel.counter(Counter::DimBatches), 10_000);
    assert_eq!(tel.hist(Hist::SinkhornSolveIters).count, 10_000);
    assert_eq!(tel.events_recorded(), 10_000);
}
