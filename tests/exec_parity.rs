//! Determinism contract of the execution engine: every parallel path must
//! be *bit-identical* to serial execution, so an [`ExecPolicy`] choice can
//! never change a result — only its wall-clock time.
//!
//! Covers the three layers individually (Sinkhorn sweeps above the
//! parallelism threshold, MLP forward/backward over parallel GEMMs) and the
//! whole Algorithm-1 pipeline end to end (imputed matrix, `n*`, and the
//! fault-tolerance anomaly record all equal under Serial vs `threads(4)`).

use scis_data::missing::inject_mcar;
use scis_repro::ot::SinkhornOptions;
use scis_repro::prelude::*;

fn correlated_table(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, 4);
    for i in 0..n {
        let t = rng.uniform();
        m[(i, 0)] = t;
        m[(i, 1)] = (0.8 * t + 0.1 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        m[(i, 2)] = (1.0 - t + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        m[(i, 3)] = (0.5 * t + 0.25 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
    }
    m
}

/// One full seeded Algorithm-1 run under the given policy and acceleration
/// setting.
fn run_pipeline_with(exec: ExecPolicy, accel: AccelConfig) -> (Matrix, usize, RunAnomalies) {
    let complete = correlated_table(400, 11);
    let mut rng = Rng64::seed_from_u64(12);
    let ds = inject_mcar(&complete, 0.25, &mut rng);
    let cfg = ScisConfig::default()
        .dim(
            DimConfig::default().train(
                TrainConfig::default()
                    .epochs(8)
                    .batch_size(64)
                    .learning_rate(0.005)
                    .dropout(0.0),
            ),
        )
        .epsilon(0.02)
        .exec(exec)
        .accel(accel);
    let mut gain = GainImputer::new(cfg.dim.train);
    let outcome = Scis::new(cfg)
        .try_run(&mut gain, &ds, 80, &mut rng)
        .expect("pipeline run");
    (outcome.imputed, outcome.n_star, outcome.anomalies)
}

/// One full seeded Algorithm-1 run under the given policy.
fn run_pipeline(exec: ExecPolicy) -> (Matrix, usize, RunAnomalies) {
    run_pipeline_with(exec, AccelConfig::default())
}

#[test]
fn full_pipeline_is_bit_identical_serial_vs_threads() {
    let (imputed_s, n_star_s, anomalies_s) = run_pipeline(ExecPolicy::Serial);
    let (imputed_p, n_star_p, anomalies_p) = run_pipeline(ExecPolicy::threads(4));
    assert_eq!(imputed_s, imputed_p, "imputed matrices diverged");
    assert_eq!(n_star_s, n_star_p, "SSE n* diverged");
    assert_eq!(anomalies_s, anomalies_p, "anomaly records diverged");
}

#[test]
fn accelerated_pipeline_is_bit_identical_serial_vs_threads() {
    // The hot-path accelerations (warm-start dual cache + decomposed cost
    // kernel) must obey the same determinism contract as everything else:
    // an ExecPolicy choice never changes a result.
    let (imputed_s, n_star_s, anomalies_s) =
        run_pipeline_with(ExecPolicy::Serial, AccelConfig::all());
    let (imputed_p, n_star_p, anomalies_p) =
        run_pipeline_with(ExecPolicy::threads(4), AccelConfig::all());
    assert_eq!(
        imputed_s, imputed_p,
        "accelerated imputed matrices diverged"
    );
    assert_eq!(n_star_s, n_star_p, "accelerated SSE n* diverged");
    assert_eq!(
        anomalies_s, anomalies_p,
        "accelerated anomaly records diverged"
    );
}

#[test]
fn f32_pipeline_is_bit_identical_serial_vs_threads() {
    // The f32 compute mode rounds kernel operands once, up front; every
    // accumulation chain stays f64 and confined to one worker, so the mode
    // must obey the same determinism contract: thread count never matters.
    let (imputed_s, n_star_s, anomalies_s) =
        run_pipeline_with(ExecPolicy::Serial, AccelConfig::all_f32());
    let (imputed_p, n_star_p, anomalies_p) =
        run_pipeline_with(ExecPolicy::threads(4), AccelConfig::all_f32());
    assert_eq!(imputed_s, imputed_p, "f32-mode imputed matrices diverged");
    assert_eq!(n_star_s, n_star_p, "f32-mode SSE n* diverged");
    assert_eq!(
        anomalies_s, anomalies_p,
        "f32-mode anomaly records diverged"
    );
}

#[test]
fn f32_pipeline_tracks_f64_quality() {
    // f32 operand rounding perturbs each kernel input by ~1e-7 relative;
    // the solves still converge to the same tolerance, so the imputation
    // must agree with the full-precision accelerated run far below any
    // difference that could move the reported RMSE.
    let complete = correlated_table(400, 11);
    let (imputed_64, _, _) = run_pipeline_with(ExecPolicy::Serial, AccelConfig::all());
    let (imputed_32, _, _) = run_pipeline_with(ExecPolicy::Serial, AccelConfig::all_f32());
    assert!(imputed_32.as_slice().iter().all(|v| v.is_finite()));
    let rmse = |imp: &Matrix| {
        let mut sq = 0.0;
        let cells = (imp.rows() * imp.cols()) as f64;
        for (a, b) in imp.as_slice().iter().zip(complete.as_slice()) {
            sq += (a - b) * (a - b);
        }
        (sq / cells).sqrt()
    };
    let delta = (rmse(&imputed_64) - rmse(&imputed_32)).abs();
    assert!(
        delta < 5e-3,
        "f32 mode moved the reconstruction RMSE by {delta:.3e}"
    );
}

#[test]
fn warm_start_cache_preserves_pipeline_quality() {
    // Warm-starting changes how many Sinkhorn iterations each solve burns,
    // not which transport plan it converges to, so the end-to-end pipeline
    // must land on essentially the same imputation with the cache on or off.
    let (imputed_off, n_star_off, anomalies_off) = run_pipeline(ExecPolicy::Serial);
    let (imputed_on, n_star_on, anomalies_on) =
        run_pipeline_with(ExecPolicy::Serial, AccelConfig::default().warm_start(true));

    // Solver-effort counters (escalations) legitimately drop with the cache
    // on — that is the feature — but health outcomes must not change.
    assert!(
        anomalies_on.sinkhorn_escalations <= anomalies_off.sinkhorn_escalations,
        "cache increased escalations: {} -> {}",
        anomalies_off.sinkhorn_escalations,
        anomalies_on.sinkhorn_escalations
    );
    assert_eq!(anomalies_off.rollbacks, anomalies_on.rollbacks);
    assert_eq!(anomalies_off.mean_fallback, anomalies_on.mean_fallback);
    assert_eq!(anomalies_off.retrain_failed, anomalies_on.retrain_failed);
    assert_eq!(
        anomalies_off.non_finite_cells_patched,
        anomalies_on.non_finite_cells_patched
    );
    assert!(imputed_on.as_slice().iter().all(|v| v.is_finite()));
    let max_diff = imputed_off
        .as_slice()
        .iter()
        .zip(imputed_on.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    // Data lives in [0, 1]; solves share the convergence tolerance, so the
    // imputations must agree far below any visible difference.
    assert!(
        max_diff < 5e-2,
        "cache on/off imputations diverged: max |diff| = {max_diff:.3e}"
    );
    let spread = (n_star_off as f64 - n_star_on as f64).abs();
    assert!(
        spread <= 40.0,
        "cache on/off n* diverged: {n_star_off} vs {n_star_on}"
    );
}

#[test]
fn blocked_gemm_matches_naive_reference_at_default_settings() {
    // The register-tiled kernels behind every default-path matmul must be a
    // pure scheduling change: same per-element accumulation chains as the
    // naive reference loops, hence bit-identical output.
    use scis_repro::tensor::ops;

    let mut rng = Rng64::seed_from_u64(91);
    for &(m, k, n) in &[(5usize, 7usize, 9usize), (64, 32, 48), (33, 31, 29)] {
        let a = Matrix::from_fn(m, k, |_, _| rng.normal());
        let b = Matrix::from_fn(k, n, |_, _| rng.normal());
        assert_eq!(ops::matmul(&a, &b), ops::matmul_naive(&a, &b));
        let bt = Matrix::from_fn(n, k, |_, _| rng.normal());
        assert_eq!(ops::matmul_bt(&a, &bt), ops::matmul_bt_naive(&a, &bt));
        let at = Matrix::from_fn(k, m, |_, _| rng.normal());
        assert_eq!(ops::matmul_at(&at, &b), ops::matmul_at_naive(&at, &b));
    }
}

#[test]
fn sinkhorn_sweeps_are_bit_identical_above_threshold() {
    // 200×200 = 40_000 cells clears the solver's parallelism threshold
    let mut rng = Rng64::seed_from_u64(21);
    let a = Matrix::from_fn(200, 6, |_, _| rng.uniform());
    let b = Matrix::from_fn(200, 6, |_, _| rng.uniform());
    let ones = Matrix::ones(200, 6);
    let base = SinkhornOptions::default().lambda(0.05).max_iters(300);

    let cost_s = scis_repro::ot::masked_sq_cost_with(&a, &ones, &b, &ones, ExecPolicy::Serial);
    let serial = scis_repro::ot::sinkhorn_uniform(&cost_s, &base.clone().exec(ExecPolicy::Serial));
    for threads in [2usize, 3, 7] {
        let exec = ExecPolicy::threads(threads);
        let cost_p = scis_repro::ot::masked_sq_cost_with(&a, &ones, &b, &ones, exec);
        assert_eq!(cost_s, cost_p, "cost matrix diverged at {threads} threads");
        let par = scis_repro::ot::sinkhorn_uniform(&cost_p, &base.clone().exec(exec));
        assert_eq!(serial.plan, par.plan, "plan diverged at {threads} threads");
        assert_eq!(
            serial.reg_value.to_bits(),
            par.reg_value.to_bits(),
            "reg_value diverged at {threads} threads"
        );
        assert_eq!(serial.iterations, par.iterations);
    }
}

#[test]
fn mlp_forward_and_backward_are_bit_identical() {
    use scis_repro::nn::{Activation, Mlp, Mode};

    // 256×64 batches over 64-wide layers clear the GEMM work threshold
    let build = || {
        let mut rng = Rng64::seed_from_u64(31);
        Mlp::builder(64)
            .dense(64, Activation::Relu)
            .dense(64, Activation::Sigmoid)
            .build(&mut rng)
    };
    let mut rng = Rng64::seed_from_u64(32);
    let x = Matrix::from_fn(256, 64, |_, _| rng.normal());
    let grad_out = Matrix::from_fn(256, 64, |_, _| rng.normal());

    let mut serial = build();
    serial.set_exec(ExecPolicy::Serial);
    let mut eval_rng = Rng64::seed_from_u64(33);
    let out_s = serial.forward(&x, Mode::Eval, &mut eval_rng);
    serial.zero_grad();
    let dx_s = serial.backward(&grad_out);
    let grads_s = serial.grad_vector();

    for threads in [2usize, 4] {
        let mut par = build();
        par.set_exec(ExecPolicy::threads(threads));
        let mut eval_rng = Rng64::seed_from_u64(33);
        let out_p = par.forward(&x, Mode::Eval, &mut eval_rng);
        par.zero_grad();
        let dx_p = par.backward(&grad_out);
        assert_eq!(out_s, out_p, "forward diverged at {threads} threads");
        assert_eq!(dx_s, dx_p, "input gradient diverged at {threads} threads");
        assert_eq!(
            grads_s,
            par.grad_vector(),
            "parameter gradients diverged at {threads} threads"
        );
    }
}

#[test]
fn sse_monte_carlo_fan_out_is_bit_identical() {
    use scis_repro::core::sse::{estimate_min_sample_size, fisher_diagonal};

    let complete = correlated_table(300, 41);
    let mut rng = Rng64::seed_from_u64(42);
    let ds = inject_mcar(&complete, 0.3, &mut rng);

    let run = |exec: ExecPolicy| {
        let mut rng = Rng64::seed_from_u64(43);
        let mut gain = GainImputer::new(TrainConfig::fast_test());
        gain.init_networks(4, &mut rng);
        let opts = SinkhornOptions::default().lambda(0.1).max_iters(100);
        let diag = fisher_diagonal(&mut gain, &ds, &opts, 64, &mut rng);
        let cfg = SseConfig::default().epsilon(5e-3).exec(exec);
        let res = estimate_min_sample_size(&mut gain, &ds, &diag, 50, 300, &cfg, &mut rng);
        (res.n_star, res.prob_at_n_star, res.probes)
    };
    assert_eq!(run(ExecPolicy::Serial), run(ExecPolicy::threads(4)));
}
