//! Integration tests of the SSE *trends* the paper's figures rely on:
//! stricter ε demands more samples (Figure 3) and the sample-size estimate
//! is well-behaved across the ε range. These run the full Algorithm 1.

use scis_core::dim::{DimConfig, GenerativeLoss, LambdaMode};
use scis_core::pipeline::{Scis, ScisConfig};
use scis_core::sse::SseConfig;
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_imputers::{GainImputer, TrainConfig};
use scis_tensor::Rng64;

fn config(epsilon: f64) -> ScisConfig {
    ScisConfig {
        dim: DimConfig {
            train: TrainConfig {
                epochs: 15,
                batch_size: 64,
                learning_rate: 0.005,
                dropout: 0.0,
            },
            lambda: LambdaMode::Relative(0.1),
            max_sinkhorn_iters: 100,
            alpha: 10.0,
            critic: None,
            loss: GenerativeLoss::MaskedSinkhorn,
            ..Default::default()
        },
        sse: SseConfig {
            epsilon,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn n_star_for(epsilon: f64, seed: u64) -> (usize, usize) {
    let inst = CovidRecipe::Response.generate(0.01, seed); // ~2000 rows
    let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let mut rng = Rng64::seed_from_u64(seed);
    let mut gain = GainImputer::new(config(epsilon).dim.train);
    let outcome = Scis::new(config(epsilon))
        .try_run(&mut gain, &norm, inst.n0, &mut rng)
        .expect("pipeline run");
    (outcome.n_star, outcome.n_total)
}

#[test]
fn figure3_trend_stricter_epsilon_needs_more_samples() {
    // identical data and seed, only ε varies (common random numbers inside
    // SSE make the comparison exact)
    let (n_loose, total) = n_star_for(0.05, 99);
    let (n_mid, _) = n_star_for(0.01, 99);
    let (n_tight, _) = n_star_for(0.002, 99);
    assert!(
        n_loose <= n_mid && n_mid <= n_tight,
        "n* not monotone in ε: {} / {} / {} (N = {})",
        n_loose,
        n_mid,
        n_tight,
        total
    );
    // and the loose end actually saves samples
    assert!(
        n_loose < total,
        "even ε = 0.05 used the whole dataset ({} of {})",
        n_loose,
        total
    );
}

#[test]
fn sse_reports_calibration_and_probes() {
    let inst = CovidRecipe::Trial.generate(0.1, 7);
    let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let mut rng = Rng64::seed_from_u64(7);
    let mut gain = GainImputer::new(config(0.01).dim.train);
    let outcome = Scis::new(config(0.01))
        .try_run(&mut gain, &norm, inst.n0, &mut rng)
        .expect("pipeline run");
    assert!(outcome.sse.calibration > 0.0 && outcome.sse.calibration.is_finite());
    assert!(outcome.sse.probes >= 1);
    assert!((0.0..=1.0).contains(&outcome.sse.prob_at_n_star));
}
