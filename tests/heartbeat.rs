//! The heartbeat stream's two contracts, end to end:
//!
//! 1. **Determinism-neutral.** Attaching a progress hook never changes the
//!    imputed output — heartbeats read the wall clock, but only *after* the
//!    caller has built the [`Progress`] snapshot from already-tracked state,
//!    so no clock value ever feeds the model. Holds at any [`ExecPolicy`].
//! 2. **Structured coverage.** With the default zero interval the stream
//!    carries at least one line per attempted training epoch plus one per
//!    imputed shard, each line is a parseable JSON object with the full
//!    schema, and sequence numbers are gapless.

use scis_core::HeartbeatHook;
use scis_data::missing::inject_mcar;
use scis_data::{ChunkedDataset, MemorySink};
use scis_repro::prelude::*;
use scis_serve::json::{self, Json};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A `Write` sink the test can read back after the hook is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .expect("heartbeat stream must be utf-8")
            .lines()
            .map(str::to_owned)
            .collect()
    }
}

const EPOCHS: usize = 8;

fn correlated_table(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, 4);
    for i in 0..n {
        let t = rng.uniform();
        m[(i, 0)] = t;
        m[(i, 1)] = (0.8 * t + 0.1 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        m[(i, 2)] = (1.0 - t + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
        m[(i, 3)] = (0.5 * t + 0.25 + rng.normal_with(0.0, 0.02)).clamp(0.0, 1.0);
    }
    m
}

fn fast_config(exec: ExecPolicy) -> ScisConfig {
    ScisConfig::default()
        .dim(
            DimConfig::default().train(
                TrainConfig::default()
                    .epochs(EPOCHS)
                    .batch_size(64)
                    .learning_rate(0.005)
                    .dropout(0.0),
            ),
        )
        .epsilon(0.02)
        .exec(exec)
}

/// One seeded in-memory run with the given hook; returns the imputed matrix.
fn run_with_hook(exec: ExecPolicy, hook: HeartbeatHook) -> Matrix {
    let complete = correlated_table(400, 11);
    let mut rng = Rng64::seed_from_u64(12);
    let ds = inject_mcar(&complete, 0.25, &mut rng);
    let mut gain = GainImputer::new(fast_config(exec).dim.train);
    Scis::new(fast_config(exec))
        .heartbeat(hook)
        .try_run(&mut gain, &ds, 80, &mut rng)
        .expect("pipeline run failed")
        .imputed
}

/// Same run through the streamed pipeline.
fn run_streamed_with_hook(exec: ExecPolicy, hook: HeartbeatHook, chunk_rows: usize) -> Matrix {
    let complete = correlated_table(400, 11);
    let mut rng = Rng64::seed_from_u64(12);
    let ds = inject_mcar(&complete, 0.25, &mut rng);
    let src = ChunkedDataset::new(&ds, chunk_rows);
    let mut gain = GainImputer::new(fast_config(exec).dim.train);
    let mut sink = MemorySink::new();
    Scis::new(fast_config(exec))
        .heartbeat(hook)
        .try_run_streamed(&mut gain, &src, 80, &mut rng, &mut sink)
        .expect("streamed pipeline run failed");
    sink.into_matrix()
}

const SCHEMA_KEYS: &[&str] = &[
    "type",
    "seq",
    "phase",
    "epoch",
    "epochs",
    "shard",
    "shards",
    "rows_done",
    "rows_total",
    "rows_per_sec",
    "eta_secs",
    "elapsed_secs",
    "peak_rss_bytes",
    "rollbacks",
    "warm_hit_rate",
];

fn parse_heartbeat(line: &str) -> Json {
    let v = json::parse(line).unwrap_or_else(|e| panic!("unparseable heartbeat {line:?}: {e}"));
    for key in SCHEMA_KEYS {
        assert!(v.get(key).is_some(), "heartbeat missing {key}: {line}");
    }
    assert_eq!(text(&v, "type"), "heartbeat");
    v
}

/// Numeric field accessor, panicking with the key name when absent.
fn num(v: &Json, key: &str) -> f64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("heartbeat field {key} is not a number"))
}

/// String field accessor, panicking with the key name when absent.
fn text<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("heartbeat field {key} is not a string"))
}

#[test]
fn heartbeat_stream_does_not_perturb_the_output() {
    for exec in [ExecPolicy::Serial, ExecPolicy::threads(4)] {
        let silent = run_with_hook(exec, HeartbeatHook::off());
        let buf = SharedBuf::default();
        let noisy = run_with_hook(
            exec,
            HeartbeatHook::to_writer(Box::new(buf.clone()), Duration::ZERO),
        );
        assert_eq!(silent, noisy, "heartbeat changed the imputation ({exec:?})");
        assert!(
            buf.lines().len() > EPOCHS,
            "expected more than {EPOCHS} heartbeats, got {} ({exec:?})",
            buf.lines().len()
        );
    }
}

#[test]
fn heartbeat_lines_carry_the_full_schema_in_order() {
    let buf = SharedBuf::default();
    run_with_hook(
        ExecPolicy::Serial,
        HeartbeatHook::to_writer(Box::new(buf.clone()), Duration::ZERO),
    );
    let lines = buf.lines();
    // at least one beat per attempted epoch of the initial train plus the
    // final impute beat (SSE probes and the retrain add more)
    assert!(lines.len() > EPOCHS, "only {} heartbeats", lines.len());
    let mut saw_train = false;
    for (i, line) in lines.iter().enumerate() {
        let v = parse_heartbeat(line);
        assert_eq!(num(&v, "seq"), i as f64, "seq gap at line {i}");
        // training beats report the epoch budget; the impute beat is
        // epoch-free (epochs=0) and counts shards instead
        if text(&v, "phase") != "impute" {
            assert_eq!(num(&v, "epochs"), EPOCHS as f64, "line {i}: {line}");
        }
        let done = num(&v, "rows_done");
        let total = num(&v, "rows_total");
        assert!(done <= total, "rows_done {done} > rows_total {total}");
        assert!(num(&v, "elapsed_secs") >= 0.0);
        assert!(num(&v, "rows_per_sec") >= 0.0);
        if text(&v, "phase") == "initial" {
            saw_train = true;
        }
    }
    assert!(saw_train, "no initial-train heartbeat in {lines:?}");
    // the run ends on the impute beat: whole matrix written, one shard
    let last = parse_heartbeat(lines.last().unwrap());
    assert_eq!(text(&last, "phase"), "impute");
    assert_eq!(num(&last, "rows_done"), 400.0);
    assert_eq!(num(&last, "rows_total"), 400.0);
    assert_eq!(num(&last, "shard"), 1.0);
    assert_eq!(num(&last, "shards"), 1.0);
}

#[test]
fn a_long_interval_suppresses_all_but_the_first_coarse_beat() {
    let buf = SharedBuf::default();
    run_with_hook(
        ExecPolicy::Serial,
        HeartbeatHook::to_writer(Box::new(buf.clone()), Duration::from_secs(3600)),
    );
    let lines = buf.lines();
    // the first coarse boundary always emits (nothing was ever emitted),
    // then the hour-long window swallows the rest of a sub-second run
    assert_eq!(lines.len(), 1, "interval gating failed: {lines:?}");
    parse_heartbeat(&lines[0]);
}

#[test]
fn streamed_run_beats_once_per_imputed_shard() {
    let silent = run_streamed_with_hook(ExecPolicy::Serial, HeartbeatHook::off(), 100);
    let buf = SharedBuf::default();
    let noisy = run_streamed_with_hook(
        ExecPolicy::Serial,
        HeartbeatHook::to_writer(Box::new(buf.clone()), Duration::ZERO),
        100,
    );
    assert_eq!(silent, noisy, "heartbeat changed the streamed imputation");
    let lines = buf.lines();
    let impute: Vec<Json> = lines
        .iter()
        .map(|l| parse_heartbeat(l))
        .filter(|v| text(v, "phase") == "impute")
        .collect();
    // 400 rows in 100-row chunks: one beat per shard, rows_done climbing
    assert_eq!(impute.len(), 4, "expected 4 impute beats in {lines:?}");
    for (k, v) in impute.iter().enumerate() {
        assert_eq!(num(v, "shard"), (k + 1) as f64);
        assert_eq!(num(v, "shards"), 4.0);
        assert_eq!(num(v, "rows_done"), ((k + 1) * 100) as f64);
        assert_eq!(num(v, "rows_total"), 400.0);
    }
}
