//! Cross-crate integration tests: the full SCIS stack — corpus recipe →
//! normalization → Algorithm 1 → metrics — plus determinism and the
//! method-zoo sanity sweep.

use scis_core::dim::{DimConfig, LambdaMode};
use scis_core::pipeline::{Scis, ScisConfig};
use scis_core::sse::SseConfig;
use scis_data::metrics::{make_holdout, rmse_vs_ground_truth};
use scis_data::normalize::MinMaxScaler;
use scis_data::CovidRecipe;
use scis_imputers::{GainImputer, Imputer, TrainConfig};
use scis_tensor::Rng64;

fn fast_scis_config() -> ScisConfig {
    ScisConfig {
        dim: DimConfig {
            train: TrainConfig {
                epochs: 20,
                batch_size: 64,
                learning_rate: 0.005,
                dropout: 0.0,
            },
            lambda: LambdaMode::Relative(0.1),
            max_sinkhorn_iters: 100,
            alpha: 10.0,
            critic: None,
            loss: scis_core::dim::GenerativeLoss::MaskedSinkhorn,
            ..Default::default()
        },
        sse: SseConfig {
            epsilon: 0.02,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn full_pipeline_on_trial_recipe() {
    let inst = CovidRecipe::Trial.generate(0.1, 42);
    let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let gt_norm = scaler.transform(&inst.ground_truth);

    let mut rng = Rng64::seed_from_u64(42);
    let config = fast_scis_config();
    let mut gain = GainImputer::new(config.dim.train);
    let outcome = Scis::new(config)
        .try_run(&mut gain, &norm, inst.n0, &mut rng)
        .expect("pipeline run");

    // structural invariants
    assert_eq!(outcome.imputed.shape(), norm.values.shape());
    assert!(!outcome.imputed.has_nan());
    for (i, j, v) in norm.observed_cells() {
        assert_eq!(
            outcome.imputed[(i, j)],
            v,
            "observed cell modified at ({},{})",
            i,
            j
        );
    }
    assert!(outcome.n_star >= outcome.n0);
    assert!(outcome.n_star <= outcome.n_total);

    // quality: better than mean fill on this correlated recipe
    let e = rmse_vs_ground_truth(&norm, &gt_norm, &outcome.imputed);
    let mut mean = scis_imputers::mean::MeanImputer;
    let e_mean = rmse_vs_ground_truth(&norm, &gt_norm, &mean.impute(&norm, &mut rng));
    assert!(e < e_mean, "SCIS-GAIN rmse {} vs mean {}", e, e_mean);
}

#[test]
fn pipeline_is_deterministic_under_fixed_seed() {
    let inst = CovidRecipe::Emergency.generate(0.05, 7);
    let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let run = || {
        let mut rng = Rng64::seed_from_u64(123);
        let config = fast_scis_config();
        let mut gain = GainImputer::new(config.dim.train);
        Scis::new(config)
            .try_run(
                &mut gain,
                &norm,
                inst.n0.min(norm.n_samples() / 3),
                &mut rng,
            )
            .expect("pipeline run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.n_star, b.n_star);
    assert_eq!(a.imputed, b.imputed);
}

#[test]
fn holdout_protocol_matches_paper_semantics() {
    // hiding 20% of observed cells must leave the original missing cells
    // missing and reduce the observed count by exactly the holdout size
    let inst = CovidRecipe::Response.generate(0.002, 5);
    let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let before = norm.mask.count_observed();
    let mut rng = Rng64::seed_from_u64(5);
    let (reduced, holdout) = make_holdout(&norm, 0.2, &mut rng);
    assert_eq!(reduced.mask.count_observed() + holdout.len(), before);
    // a perfect oracle gets RMSE 0
    let mut oracle = norm.values.clone();
    oracle.map_inplace(|v| if v.is_nan() { 0.0 } else { v });
    assert_eq!(holdout.rmse(&oracle), 0.0);
}

#[test]
fn deep_imputers_beat_mean_on_a_correlated_recipe() {
    use scis_imputers::midae::MidaeImputer;
    use scis_imputers::vaei::VaeImputer;

    let inst = CovidRecipe::Trial.generate(0.05, 11);
    let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let gt_norm = scaler.transform(&inst.ground_truth);
    let mut rng = Rng64::seed_from_u64(11);
    let mut mean = scis_imputers::mean::MeanImputer;
    let e_mean = rmse_vs_ground_truth(&norm, &gt_norm, &mean.impute(&norm, &mut rng));

    let train = TrainConfig {
        epochs: 40,
        batch_size: 64,
        learning_rate: 0.005,
        dropout: 0.1,
    };
    let mut midae = MidaeImputer {
        config: train,
        hidden: 32,
        n_imputations: 3,
    };
    let e_midae = rmse_vs_ground_truth(&norm, &gt_norm, &midae.impute(&norm, &mut rng));
    assert!(e_midae < e_mean, "midae {} vs mean {}", e_midae, e_mean);

    let mut vae = VaeImputer {
        config: train,
        latent: 4,
        hidden: 16,
        beta: 1e-4,
    };
    let e_vae = rmse_vs_ground_truth(&norm, &gt_norm, &vae.impute(&norm, &mut rng));
    assert!(e_vae < e_mean, "vaei {} vs mean {}", e_vae, e_mean);
}

#[test]
fn scis_uses_fewer_training_samples_than_full_on_large_recipe() {
    // the headline claim at small scale: n* ≪ N on a big, redundant dataset
    let inst = CovidRecipe::Response.generate(0.02, 13); // ~4000 rows
    let (norm, _) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let mut rng = Rng64::seed_from_u64(13);
    let mut config = fast_scis_config();
    config.sse.epsilon = 0.01;
    let mut gain = GainImputer::new(config.dim.train);
    let outcome = Scis::new(config)
        .try_run(&mut gain, &norm, inst.n0, &mut rng)
        .expect("pipeline run");
    assert!(
        outcome.training_sample_rate() < 0.8,
        "expected n* well below N, got R_t = {:.1}%",
        outcome.training_sample_rate() * 100.0
    );
}

#[test]
fn normalization_roundtrip_through_imputation() {
    let inst = CovidRecipe::Emergency.generate(0.03, 17);
    let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&inst.dataset);
    let mut rng = Rng64::seed_from_u64(17);
    let mut mean = scis_imputers::mean::MeanImputer;
    let imputed = mean.impute(&norm, &mut rng);
    let back = scaler.inverse_transform(&imputed);
    // observed cells come back to their original (pre-normalization) values
    for (i, j, v) in inst.dataset.observed_cells() {
        assert!(
            (back[(i, j)] - v).abs() < 1e-9,
            "({},{}): {} vs {}",
            i,
            j,
            back[(i, j)],
            v
        );
    }
}
