//! End-to-end tests for the `scis-serve` HTTP server: many concurrent
//! clients with bit-identical responses, queue backpressure (503 then
//! success on retry), and typed errors for truncated bundles and
//! wrong-width rows.

use scis_repro::api::{ExecPolicy, ImputeRow, ImputeService, ModelBundle, Server, ServerConfig};
use scis_repro::data::{ColumnKind, MinMaxScaler};
use scis_repro::imputers::{AdversarialImputer, GainImputer, TrainConfig};
use scis_repro::serve::batcher::BatchConfig;
use scis_repro::serve::bundle::{BundleError, ColumnMeta};
use scis_repro::serve::client::request;
use scis_repro::serve::json::{parse as json_parse, Json};
use scis_repro::telemetry::Telemetry;
use scis_repro::tensor::{Matrix, Rng64};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn tiny_bundle(d: usize, seed: u64) -> ModelBundle {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut gain = GainImputer::new(TrainConfig::fast_test());
    gain.init_networks(d, &mut rng);
    let spec = gain.generator_spec();
    let generator = gain.generator_mut().clone();
    let values = Matrix::from_fn(32, d, |i, j| (i * 3 + j) as f64 * 0.25 - 1.0);
    let scaler = MinMaxScaler::fit(&values);
    let columns = (0..d)
        .map(|j| ColumnMeta {
            name: format!("c{}", j),
            kind: ColumnKind::Continuous,
            mean: j as f64 * 0.5,
        })
        .collect();
    ModelBundle::new(generator, spec, scaler, columns, Default::default()).unwrap()
}

/// A client-side row pattern: every third cell missing, values vary by
/// (client, request) so concurrent batches mix distinct rows.
fn client_rows(d: usize, client: usize, req: usize, n_rows: usize) -> Vec<ImputeRow> {
    (0..n_rows)
        .map(|r| {
            (0..d)
                .map(|j| {
                    if (client + req + r + j).is_multiple_of(3) {
                        None
                    } else {
                        Some((client * 7 + req * 3 + r + j) as f64 * 0.125 - 2.0)
                    }
                })
                .collect()
        })
        .collect()
}

fn rows_to_json(rows: &[ImputeRow]) -> String {
    let mut body = String::from("{\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('[');
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            match cell {
                Some(v) => body.push_str(&scis_repro::telemetry::json_f64(*v)),
                None => body.push_str("null"),
            }
        }
        body.push(']');
    }
    body.push_str("]}");
    body
}

fn parse_rows(body: &str) -> Vec<Vec<f64>> {
    let json = json_parse(body).expect("response is valid JSON");
    json.get("rows")
        .and_then(Json::as_arr)
        .expect("response has rows")
        .iter()
        .map(|row| {
            row.as_arr()
                .expect("row is an array")
                .iter()
                .map(|v| v.as_f64().expect("cell is a number"))
                .collect()
        })
        .collect()
}

/// Posts rows until a 200 arrives, retrying on 503 backpressure. Returns
/// the imputed rows and how many 503s were absorbed along the way.
fn impute_with_retry(addr: std::net::SocketAddr, body: &str) -> (Vec<Vec<f64>>, usize) {
    let mut retried = 0usize;
    loop {
        let resp = request(addr, "POST", "/impute", Some(body)).expect("request I/O");
        match resp.status {
            200 => return (parse_rows(&resp.body), retried),
            503 => {
                assert_eq!(resp.header("Retry-After"), Some("1"));
                retried += 1;
                assert!(retried < 10_000, "starved by backpressure");
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            other => panic!("unexpected status {}: {}", other, resp.body),
        }
    }
}

fn assert_bits_equal(got: &[Vec<f64>], want: &[Vec<f64>], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{}: row count", ctx);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{}: row {} width", ctx, i);
        for (j, (a, b)) in g.iter().zip(w).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: cell ({}, {}): {} vs {}",
                ctx,
                i,
                j,
                a,
                b
            );
        }
    }
}

#[test]
fn sixty_four_concurrent_clients_get_bit_identical_answers() {
    const CLIENTS: usize = 64;
    const REQUESTS: usize = 4;
    const ROWS: usize = 3;
    let d = 6;
    let bundle = tiny_bundle(d, 41);

    // The reference answers come from a direct in-process forward at a
    // *different* ExecPolicy than the server uses: responses must be
    // bit-identical across both the HTTP boundary and the exec policy.
    let mut reference = ImputeService::new(bundle.clone(), ExecPolicy::Serial, Telemetry::off());

    let server = Server::start(
        bundle,
        ServerConfig {
            exec: ExecPolicy::threads(2),
            ..ServerConfig::default()
        },
        Telemetry::collecting(),
    )
    .expect("server starts");
    let addr = server.local_addr();

    let retried_total = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let retried_total = retried_total.clone();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for req in 0..REQUESTS {
                    let rows = client_rows(d, client, req, ROWS);
                    let (answer, retried) = impute_with_retry(addr, &rows_to_json(&rows));
                    retried_total.fetch_add(retried, Ordering::Relaxed);
                    out.push((rows, answer));
                }
                out
            })
        })
        .collect();

    let mut served = 0usize;
    for handle in handles {
        for (rows, answer) in handle.join().expect("client thread") {
            let want = reference.impute_rows(&rows);
            assert!(!want.degraded);
            assert_bits_equal(&answer, &want.rows, "server vs direct forward");
            served += 1;
        }
    }
    // zero dropped: every one of the 64 * 4 requests came back with a 200
    assert_eq!(served, CLIENTS * REQUESTS);

    // the statz endpoint saw the traffic
    let statz = request(addr, "GET", "/statz", None).expect("statz");
    assert_eq!(statz.status, 200);
    let json = json_parse(&statz.body).expect("statz is valid JSON");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("scis-serve-statz-v2")
    );
    let requests_seen = json
        .get("counters")
        .and_then(|c| c.get("serve_requests"))
        .and_then(Json::as_f64)
        .expect("serve_requests counter") as usize;
    assert!(requests_seen >= CLIENTS * REQUESTS);
}

#[test]
fn saturated_queue_returns_503_then_succeeds_on_retry() {
    let d = 8;
    let bundle = tiny_bundle(d, 43);
    let mut reference = ImputeService::new(bundle.clone(), ExecPolicy::Serial, Telemetry::off());

    // One queue slot and one-row batches: concurrent writers must collide
    // with QueueFull while the batcher is mid-forward.
    let server = Server::start(
        bundle,
        ServerConfig {
            batch: BatchConfig {
                queue_cap: 1,
                max_batch_rows: 1,
                flush_micros: 0,
            },
            ..ServerConfig::default()
        },
        Telemetry::collecting(),
    )
    .expect("server starts");
    let addr = server.local_addr();

    let total_503 = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..16)
        .map(|client| {
            let total_503 = total_503.clone();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for req in 0..24 {
                    let rows = client_rows(d, client, req, 8);
                    let (answer, retried) = impute_with_retry(addr, &rows_to_json(&rows));
                    total_503.fetch_add(retried, Ordering::Relaxed);
                    out.push((rows, answer));
                }
                out
            })
        })
        .collect();
    for handle in handles {
        for (rows, answer) in handle.join().expect("client thread") {
            let want = reference.impute_rows(&rows);
            assert_bits_equal(&answer, &want.rows, "answer after backpressure");
        }
    }
    // the 1-slot queue must actually have pushed back at least once, and
    // every 503 was followed by an eventual success (asserted above)
    assert!(
        total_503.load(Ordering::Relaxed) > 0,
        "16 writers against a 1-slot queue never saw a 503"
    );
}

#[test]
fn truncated_bundle_is_a_typed_error_not_a_panic() {
    let bundle = tiny_bundle(5, 47);
    let dir = std::env::temp_dir().join(format!("scis_serve_trunc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.bundle");
    bundle.save(&path).unwrap();

    let full = std::fs::read_to_string(&path).unwrap();
    for frac in [4, 2] {
        let cut = full.len() / frac;
        std::fs::write(&path, &full[..cut]).unwrap();
        match ModelBundle::load(&path) {
            Err(BundleError::Format { .. }) | Err(BundleError::Checksum { .. }) => {}
            Err(other) => panic!("unexpected error kind: {}", other),
            Ok(_) => panic!("truncated bundle at {} bytes loaded successfully", cut),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_width_row_is_rejected_with_400() {
    let d = 4;
    let server = Server::start(
        tiny_bundle(d, 53),
        ServerConfig::default(),
        Telemetry::off(),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // d+1 cells: typed 400, message names both widths
    let resp = request(addr, "POST", "/impute", Some("{\"row\":[1,2,3,4,5]}")).expect("request");
    assert_eq!(resp.status, 400);
    assert!(
        resp.body.contains('4') && resp.body.contains('5'),
        "{}",
        resp.body
    );

    // malformed JSON: typed 400, never a hung connection or panic
    let resp = request(addr, "POST", "/impute", Some("{\"row\":[1,")).expect("request");
    assert_eq!(resp.status, 400);

    // a valid request on the same server still succeeds afterwards
    let resp = request(addr, "POST", "/impute", Some("{\"row\":[1,null,3,null]}")).expect("ok");
    assert_eq!(resp.status, 200);
    let rows = parse_rows(&resp.body);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].len(), d);
    assert!(rows[0].iter().all(|v| v.is_finite()));
}

#[test]
fn trace_ids_flow_from_response_header_to_access_log_and_metricsz_counts() {
    use scis_repro::serve::client::request_with_headers;
    let d = 4;
    let dir = std::env::temp_dir().join(format!("scis_serve_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.jsonl");
    let mut server = Server::start(
        tiny_bundle(d, 61),
        ServerConfig {
            access_log: Some(log_path.clone()),
            ..ServerConfig::default()
        },
        Telemetry::collecting(),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // a server-minted trace id: 16 lowercase hex chars, unique per request
    let first = request(addr, "POST", "/impute", Some("{\"row\":[1,null,3,null]}")).unwrap();
    assert_eq!(first.status, 200);
    let minted = first
        .header("X-Scis-Trace-Id")
        .expect("minted id")
        .to_owned();
    assert_eq!(minted.len(), 16, "minted id {minted:?}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));
    let second = request(addr, "POST", "/impute", Some("{\"row\":[1,null,3,null]}")).unwrap();
    let minted2 = second
        .header("X-Scis-Trace-Id")
        .expect("minted id")
        .to_owned();
    assert_ne!(minted, minted2, "trace ids must be unique per request");

    // a client-supplied id round-trips verbatim
    let resp = request_with_headers(
        addr,
        "POST",
        "/impute",
        Some("{\"row\":[null,2,null,4]}"),
        &[("X-Scis-Trace-Id", "req-42_abc")],
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("X-Scis-Trace-Id"), Some("req-42_abc"));

    // /metricsz is valid-looking Prometheus text and saw all three requests
    let metrics = request(addr, "GET", "/metricsz", None).expect("metricsz");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("Content-Type"),
        Some("text/plain; version=0.0.4")
    );
    let line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("scis_serve_requests "))
        .expect("serve_requests sample");
    let seen: f64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(seen >= 3.0, "metricsz lost requests: {line}");
    assert!(metrics.body.contains("# TYPE scis_serve_requests counter"));
    assert!(metrics.body.contains("scis_serve_requests_per_sec"));

    // every handled request left one access-log line carrying its trace id
    server.shutdown();
    let log = std::fs::read_to_string(&log_path).expect("access log exists");
    let ids: Vec<String> = log
        .lines()
        .map(|l| {
            let v = json_parse(l).unwrap_or_else(|e| panic!("bad access-log line {l:?}: {e}"));
            assert!(v.get("status").is_some(), "no status in {l}");
            assert!(v.get("latency_ns").is_some(), "no latency in {l}");
            v.get("trace_id")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("no trace_id in {l}"))
                .to_owned()
        })
        .collect();
    for id in [minted.as_str(), minted2.as_str(), "req-42_abc"] {
        assert!(
            ids.iter().any(|i| i == id),
            "access log lost trace {id}: {log}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthz_reports_live_batcher_and_schema_width() {
    let d = 7;
    let server = Server::start(
        tiny_bundle(d, 59),
        ServerConfig::default(),
        Telemetry::off(),
    )
    .expect("server starts");
    let resp = request(server.local_addr(), "GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200);
    let json = json_parse(&resp.body).expect("healthz is valid JSON");
    assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        json.get("batcher_alive").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(json.get("columns").and_then(Json::as_f64), Some(d as f64));
}
