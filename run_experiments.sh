#!/bin/sh
# Runs the full experiment campaign at laptop scale, logging everything to
# bench_results/logs/. Small recipes (Trial, Emergency) run at FULL size;
# MAXROWS caps the million-row ones. The settings below target a ~40-minute
# single-core sweep; raise MAXROWS / SEEDS / BUDGET / EPOCHS (and drop the
# RECIPES filters) for closer-to-paper runs — see EXPERIMENTS.md.
set -x
mkdir -p bench_results/logs
BIN=./target/release

SCALE=1.0 MAXROWS=8500 SEEDS=1 BUDGET=120 EPOCHS=10 $BIN/table3 > bench_results/logs/table3.log 2>&1
SCALE=0.002 SEEDS=1 BUDGET=120 EPOCHS=10 $BIN/table4            > bench_results/logs/table4.log 2>&1
SCALE=1.0 MAXROWS=8500 SEEDS=1 BUDGET=120 EPOCHS=10 $BIN/table5 > bench_results/logs/table5.log 2>&1
SCALE=0.002 SEEDS=1 BUDGET=120 EPOCHS=10 $BIN/table6            > bench_results/logs/table6.log 2>&1
RECIPES=trial SCALE=1.0 BUDGET=120 EPOCHS=10 $BIN/fig2          > bench_results/logs/fig2.log 2>&1
RECIPES=trial SCALE=1.0 BUDGET=120 EPOCHS=10 $BIN/fig3          > bench_results/logs/fig3.log 2>&1
RECIPES=trial SCALE=1.0 BUDGET=120 EPOCHS=10 $BIN/fig4          > bench_results/logs/fig4.log 2>&1
SCALE=0.05 BUDGET=120 EPOCHS=10 $BIN/table7                     > bench_results/logs/table7.log 2>&1
$BIN/fig_divergence                                             > bench_results/logs/fig_divergence.log 2>&1
SIZES=1000,4000,16000 BUDGET=300 EPOCHS=10 $BIN/fig_scaling     > bench_results/logs/fig_scaling.log 2>&1
SCALE=1.0 MAXROWS=3000 BUDGET=120 EPOCHS=10 $BIN/ablation_dim   > bench_results/logs/ablation_dim.log 2>&1
EPOCHS=10 BUDGET=120 $BIN/ext_mechanisms                        > bench_results/logs/ext_mechanisms.log 2>&1
SERVE_BENCH_CLIENTS=64 SERVE_BENCH_REQUESTS=32 SERVE_BENCH_OUT=BENCH_serve.json $BIN/serve_bench > bench_results/logs/serve_bench.log 2>&1
$BIN/summarize                                                  > bench_results/logs/summarize.log 2>&1
echo CAMPAIGN_DONE
