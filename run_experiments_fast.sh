#!/bin/sh
# Time-boxed single-core sweep (~45 min): every paper artifact at a scale
# where every method (including the SCIS rows) finishes. Paper-critical
# artifacts first; extensions last.
set -x
mkdir -p bench_results/logs
BIN=./target/release
SCALE=1.0 MAXROWS=1500 SEEDS=1 BUDGET=120 EPOCHS=10 $BIN/table3 > bench_results/logs/table3.log 2>&1
SCALE=0.0005 SEEDS=1 BUDGET=120 EPOCHS=10 $BIN/table4           > bench_results/logs/table4.log 2>&1
SCALE=1.0 MAXROWS=1500 SEEDS=1 BUDGET=120 EPOCHS=10 $BIN/table5 > bench_results/logs/table5.log 2>&1
SCALE=0.0005 SEEDS=1 BUDGET=120 EPOCHS=10 $BIN/table6           > bench_results/logs/table6.log 2>&1
$BIN/fig_divergence                                             > bench_results/logs/fig_divergence.log 2>&1
RECIPES=trial SCALE=1.0 MAXROWS=1500 BUDGET=90 EPOCHS=8 $BIN/fig3 > bench_results/logs/fig3.log 2>&1
RECIPES=trial SCALE=1.0 MAXROWS=1500 BUDGET=90 EPOCHS=8 $BIN/fig4 > bench_results/logs/fig4.log 2>&1
RECIPES=trial SCALE=1.0 MAXROWS=1500 BUDGET=90 EPOCHS=8 $BIN/fig2 > bench_results/logs/fig2.log 2>&1
SCALE=0.02 BUDGET=90 EPOCHS=8 $BIN/table7                       > bench_results/logs/table7.log 2>&1
SIZES=500,2000,8000 BUDGET=240 EPOCHS=8 $BIN/fig_scaling        > bench_results/logs/fig_scaling.log 2>&1
SCALE=1.0 MAXROWS=1500 BUDGET=90 EPOCHS=8 $BIN/ablation_dim     > bench_results/logs/ablation_dim.log 2>&1
EPOCHS=8 BUDGET=90 $BIN/ext_mechanisms                          > bench_results/logs/ext_mechanisms.log 2>&1
SERVE_BENCH_CLIENTS=32 SERVE_BENCH_REQUESTS=16 SERVE_BENCH_OUT=BENCH_serve.json $BIN/serve_bench > bench_results/logs/serve_bench.log 2>&1
$BIN/summarize                                                  > bench_results/logs/summarize.log 2>&1
echo CAMPAIGN_DONE
