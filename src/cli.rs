//! Shared command-line implementation behind the `scis` multitool and the
//! legacy `scis-impute` shim.
//!
//! The public surface is four subcommands over one flag vocabulary:
//!
//! * `scis train INPUT OUTPUT [flags]` — the full SSE pipeline (the old
//!   `scis-impute` behavior, flag-for-flag); `--save-model` now writes a
//!   self-contained [`ModelBundle`] artifact instead of bare weights.
//! * `scis impute INPUT OUTPUT --model PATH [--threads t]` — apply-only:
//!   load a bundle (or a bare v2 generator file) and fill a CSV without
//!   training.
//! * `scis serve --model PATH [--addr a] [--threads t] …` — the online
//!   server from `scis-serve`.
//! * `scis report FILE…` — render any of the repo's JSON artifacts (run
//!   reports, bench files, `/statz` captures) as an indented summary.
//!
//! The global flags `--threads`, `--trace-json`, `--events`, and
//! `--profile` may also appear *before* the subcommand; they are forwarded
//! into it. The legacy `scis-impute INPUT OUTPUT [flags]` invocation maps
//! to `train` unchanged (same stderr, same exit codes) plus a deprecation
//! notice.
//!
//! Exit codes (train/impute): `0` clean, `1` error, `2` degraded output,
//! `3` deadline-exceeded (precedence over 2).

use scis_core::pipeline::{Scis, ScisConfig};
use scis_core::{CheckpointPolicy, TrainCheckpoint};
use scis_data::csvio::{read_dataset, write_dataset, CsvRows};
use scis_data::dataset::{infer_kinds_source, ColumnKind};
use scis_data::normalize::MinMaxScaler;
use scis_data::shard::{ShardError, ShardSink, SpillWriter};
use scis_data::validate::validate_source;
use scis_data::{Dataset, RowSource, ScaledSource, ShardedDataset};
use scis_imputers::knn::KnnImputer;
use scis_imputers::mean::MeanImputer;
use scis_imputers::mice::MiceImputer;
use scis_imputers::missforest::MissForestImputer;
use scis_imputers::vaei::VaeImputer;
use scis_imputers::{AdversarialImputer, GainImputer, GinnImputer, Imputer, TrainConfig};
use scis_serve::batcher::BatchConfig;
use scis_serve::bundle::{ColumnMeta, ModelBundle};
use scis_serve::server::{Server, ServerConfig};
use scis_serve::service::{ImputeRow, ImputeService};
use scis_tensor::ExecPolicy;
use scis_tensor::{Matrix, Rng64};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Entry point for the `scis` multitool.
pub fn run_scis() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // global flags may precede the subcommand; forward them into it
    let mut forwarded: Vec<String> = Vec::new();
    while let Some(first) = argv.first().cloned() {
        match first.as_str() {
            "--threads" | "--trace-json" | "--events" => {
                if argv.len() < 2 {
                    eprintln!("error: {} needs a value\n{}", first, TOP_USAGE);
                    return ExitCode::FAILURE;
                }
                forwarded.push(argv.remove(0));
                forwarded.push(argv.remove(0));
            }
            "--profile" => forwarded.push(argv.remove(0)),
            _ => break,
        }
    }
    let Some(sub) = argv.first().cloned() else {
        eprintln!("error: missing subcommand\n{}", TOP_USAGE);
        return ExitCode::FAILURE;
    };
    let mut rest: Vec<String> = argv.into_iter().skip(1).collect();
    rest.extend(forwarded);
    match sub.as_str() {
        "train" => finish(run_train("scis", "scis train", rest)),
        "impute" => finish(run_impute("scis", rest)),
        "serve" => finish(run_serve("scis", rest)),
        "report" => finish(run_report(rest)),
        "--help" | "-h" | "help" => {
            println!("{}", TOP_USAGE);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown subcommand {:?}\n{}", other, TOP_USAGE);
            ExitCode::FAILURE
        }
    }
}

/// Entry point for the legacy `scis-impute` shim: the old single-command
/// interface, mapped to `train` with a deprecation notice. Behavior and
/// exit codes are unchanged for one release.
pub fn run_legacy_impute() -> ExitCode {
    eprintln!(
        "scis-impute: deprecation notice — this invocation form is now `scis train INPUT.csv \
         OUTPUT.csv [flags]` (and apply-only runs are `scis impute`); the scis-impute shim \
         will be removed in a future release"
    );
    let argv: Vec<String> = std::env::args().skip(1).collect();
    finish(run_train("scis-impute", "scis-impute", argv))
}

const TOP_USAGE: &str = "usage: scis [--threads t] [--trace-json p] [--events p] [--profile] <subcommand>\n\
subcommands:\n  \
train INPUT.csv OUTPUT.csv [flags]   train (SSE pipeline) and impute; --save-model writes a model bundle; --shard-rows streams out of core\n  \
impute INPUT.csv OUTPUT.csv --model PATH [--threads t] [--shard-rows n]   apply a saved model, no training\n  \
serve --model PATH [--addr host:port] [--threads t] [--queue-cap n] [--batch-rows n] [--flush-micros us] [--access-log p]   online HTTP server\n  \
report FILE.json [...]   summarize run-report / bench / statz JSON artifacts plus heartbeat / access-log JSONL streams";

/// Outcome flags that decide the process exit code.
#[derive(Default)]
struct RunFlags {
    /// The fault-tolerant runtime had to degrade the output (exit code 2).
    degraded: bool,
    /// The `--deadline-secs` budget expired; the output comes from the best
    /// model trained so far (exit code 3, takes precedence over 2).
    deadline_exceeded: bool,
}

fn finish(result: Result<RunFlags, String>) -> ExitCode {
    match result {
        Ok(flags) if flags.deadline_exceeded => ExitCode::from(3),
        Ok(flags) if flags.degraded => ExitCode::from(2),
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e);
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// train — the full pipeline (old scis-impute behavior)
// ---------------------------------------------------------------------------

struct TrainArgs {
    input: PathBuf,
    output: PathBuf,
    method: String,
    epsilon: f64,
    n0: Option<usize>,
    epochs: usize,
    threads: Option<usize>,
    seed: u64,
    save_model: Option<PathBuf>,
    load_model: Option<PathBuf>,
    trace_json: Option<PathBuf>,
    events: Option<PathBuf>,
    profile: bool,
    accel: bool,
    accel_f32: bool,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: usize,
    resume: Option<PathBuf>,
    deadline_secs: Option<f64>,
    shard_rows: Option<usize>,
    spill_dir: Option<PathBuf>,
    progress: Option<PathBuf>,
    progress_interval_secs: f64,
}

fn parse_train_args(argv: Vec<String>) -> Result<TrainArgs, String> {
    let mut args = argv.into_iter();
    let input = PathBuf::from(args.next().ok_or("missing INPUT.csv")?);
    let output = PathBuf::from(args.next().ok_or("missing OUTPUT.csv")?);
    let mut parsed = TrainArgs {
        input,
        output,
        method: "scis-gain".into(),
        epsilon: 0.001,
        n0: None,
        epochs: 100,
        threads: None,
        seed: 42,
        save_model: None,
        load_model: None,
        trace_json: None,
        events: None,
        profile: false,
        accel: false,
        accel_f32: false,
        checkpoint_dir: None,
        checkpoint_every: 1,
        resume: None,
        deadline_secs: None,
        shard_rows: None,
        spill_dir: None,
        progress: None,
        progress_interval_secs: 0.0,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("{} needs a value", flag));
        match flag.as_str() {
            "--method" => parsed.method = value()?,
            "--epsilon" => {
                parsed.epsilon = value()?.parse().map_err(|e| format!("--epsilon: {}", e))?
            }
            "--n0" => parsed.n0 = Some(value()?.parse().map_err(|e| format!("--n0: {}", e))?),
            "--epochs" => {
                parsed.epochs = value()?.parse().map_err(|e| format!("--epochs: {}", e))?
            }
            "--threads" => {
                parsed.threads = Some(value()?.parse().map_err(|e| format!("--threads: {}", e))?)
            }
            "--seed" => parsed.seed = value()?.parse().map_err(|e| format!("--seed: {}", e))?,
            "--save-model" => parsed.save_model = Some(PathBuf::from(value()?)),
            "--load-model" => parsed.load_model = Some(PathBuf::from(value()?)),
            "--trace-json" => parsed.trace_json = Some(PathBuf::from(value()?)),
            "--events" => parsed.events = Some(PathBuf::from(value()?)),
            "--profile" => parsed.profile = true,
            "--accel" => parsed.accel = true,
            "--accel-f32" => {
                // f32 compute implies the rest of the accelerated path
                parsed.accel = true;
                parsed.accel_f32 = true;
            }
            "--checkpoint-dir" => parsed.checkpoint_dir = Some(PathBuf::from(value()?)),
            "--checkpoint-every" => {
                parsed.checkpoint_every = value()?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {}", e))?
            }
            "--resume" => parsed.resume = Some(PathBuf::from(value()?)),
            "--deadline-secs" => {
                parsed.deadline_secs = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--deadline-secs: {}", e))?,
                )
            }
            "--shard-rows" => {
                parsed.shard_rows = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--shard-rows: {}", e))?,
                )
            }
            "--spill-dir" => parsed.spill_dir = Some(PathBuf::from(value()?)),
            "--progress" => parsed.progress = Some(PathBuf::from(value()?)),
            "--progress-interval-secs" => {
                parsed.progress_interval_secs = value()?
                    .parse()
                    .map_err(|e| format!("--progress-interval-secs: {}", e))?
            }
            other => return Err(format!("unknown flag {}", other)),
        }
    }
    if parsed.epochs == 0 {
        return Err("--epochs must be at least 1".into());
    }
    if parsed.method != "scis-gain" && (parsed.save_model.is_some() || parsed.load_model.is_some())
    {
        return Err(format!(
            "--save-model/--load-model only apply to --method scis-gain (got {:?})",
            parsed.method
        ));
    }
    if parsed.accel && parsed.method != "scis-gain" {
        return Err(format!(
            "--accel/--accel-f32 only apply to --method scis-gain (got {:?})",
            parsed.method
        ));
    }
    if parsed.checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    if parsed.checkpoint_every != 1 && parsed.checkpoint_dir.is_none() {
        return Err("--checkpoint-every requires --checkpoint-dir".into());
    }
    if parsed.resume.is_some() && parsed.load_model.is_some() {
        return Err("--resume is incompatible with --load-model (no training runs)".into());
    }
    if let Some(d) = parsed.deadline_secs {
        if !d.is_finite() || d <= 0.0 {
            return Err(format!(
                "--deadline-secs must be a positive finite number (got {})",
                d
            ));
        }
    }
    if parsed.shard_rows == Some(0) {
        return Err("--shard-rows must be at least 1".into());
    }
    if !parsed.progress_interval_secs.is_finite() || parsed.progress_interval_secs < 0.0 {
        return Err(format!(
            "--progress-interval-secs must be a non-negative finite number (got {})",
            parsed.progress_interval_secs
        ));
    }
    if parsed.progress_interval_secs > 0.0 && parsed.progress.is_none() {
        return Err("--progress-interval-secs requires --progress".into());
    }
    if parsed.spill_dir.is_some() && parsed.shard_rows.is_none() {
        return Err("--spill-dir requires --shard-rows".into());
    }
    if parsed.shard_rows.is_some() && parsed.save_model.is_some() {
        return Err(
            "--shard-rows is incompatible with --save-model (the bundle needs the \
             in-memory input; train without --shard-rows to export a model)"
                .into(),
        );
    }
    for (set, flag) in [
        (parsed.trace_json.is_some(), "--trace-json"),
        (parsed.events.is_some(), "--events"),
        (parsed.profile, "--profile"),
        (parsed.checkpoint_dir.is_some(), "--checkpoint-dir"),
        (parsed.resume.is_some(), "--resume"),
        (parsed.deadline_secs.is_some(), "--deadline-secs"),
        (parsed.shard_rows.is_some(), "--shard-rows"),
        (parsed.spill_dir.is_some(), "--spill-dir"),
        (parsed.progress.is_some(), "--progress"),
    ] {
        if !set {
            continue;
        }
        if parsed.method != "scis-gain" {
            return Err(format!(
                "{} only applies to --method scis-gain (got {:?})",
                flag, parsed.method
            ));
        }
        if parsed.load_model.is_some() {
            return Err(format!(
                "{} is incompatible with --load-model (no pipeline runs)",
                flag
            ));
        }
    }
    Ok(parsed)
}

/// Prints the fault-tolerant runtime's recovery summary to stderr.
fn report_anomalies(prog: &str, a: &scis_core::RunAnomalies) {
    if a.is_clean() {
        return;
    }
    eprintln!(
        "{}: anomalies — {} NaN batches skipped, {} rollbacks, {} LR backoffs, \
         {} sinkhorn escalations ({} unconverged), {} non-finite cells patched",
        prog,
        a.nan_batches_skipped,
        a.rollbacks,
        a.lr_backoffs,
        a.sinkhorn_escalations,
        a.sinkhorn_unconverged,
        a.non_finite_cells_patched,
    );
    if !a.all_missing_columns.is_empty() {
        eprintln!(
            "{}: columns with no observed cells: {:?}",
            prog, a.all_missing_columns
        );
    }
    if !a.constant_columns.is_empty() {
        eprintln!("{}: constant columns: {:?}", prog, a.constant_columns);
    }
    for note in &a.notes {
        eprintln!("{}: recovery: {}", prog, note);
    }
}

/// Writes the flight recorder's buffered event stream as JSON Lines.
fn write_events(prog: &str, path: &Path, tel: &scis_telemetry::Telemetry) -> Result<(), String> {
    let events = tel.events();
    let mut out = String::new();
    for ev in &events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| format!("writing events {:?}: {}", path, e))?;
    eprintln!(
        "{}: wrote {} flight-recorder events to {:?}",
        prog,
        events.len(),
        path
    );
    Ok(())
}

/// Resolves `--threads` to an [`ExecPolicy`]: `0` forces serial execution,
/// `n ≥ 1` pins `n` workers, and an absent flag defers to `SCIS_THREADS` /
/// the machine's available parallelism.
fn threads_policy(threads: Option<usize>) -> ExecPolicy {
    match threads {
        Some(0) => ExecPolicy::Serial,
        Some(n) => ExecPolicy::threads(n),
        None => ExecPolicy::Auto,
    }
}

/// Mean of the observed (non-NaN) cells of column `j` in original units;
/// NaN when the column has no observed cells (the bundle's fallback row
/// degrades that to 0.0).
fn observed_mean(ds: &Dataset, j: usize) -> f64 {
    let mut sum = 0.0;
    let mut count = 0u64;
    for i in 0..ds.n_samples() {
        let v = ds.values[(i, j)];
        if !v.is_nan() {
            sum += v;
            count += 1;
        }
    }
    if count == 0 {
        f64::NAN
    } else {
        sum / count as f64
    }
}

/// Assembles the serving artifact from a trained GAIN imputer plus the
/// training input's schema and scaler.
fn build_bundle(
    gain: &mut GainImputer,
    orig: &Dataset,
    scaler: &MinMaxScaler,
    accel: scis_core::dim::AccelConfig,
) -> Result<ModelBundle, String> {
    let spec = gain.generator_spec();
    let generator = gain.generator_mut().clone();
    let columns = (0..orig.n_features())
        .map(|j| ColumnMeta {
            name: format!("c{}", j),
            kind: orig.kinds[j].clone(),
            mean: observed_mean(orig, j),
        })
        .collect();
    ModelBundle::new(generator, spec, scaler.clone(), columns, accel)
        .map_err(|e| format!("assembling model bundle: {}", e))
}

/// The `AccelConfig` a parsed command line asks for.
fn accel_config(args: &TrainArgs) -> scis_core::dim::AccelConfig {
    if args.accel_f32 {
        scis_core::dim::AccelConfig::all_f32()
    } else if args.accel {
        scis_core::dim::AccelConfig::all()
    } else {
        scis_core::dim::AccelConfig::default()
    }
}

/// The heartbeat hook a parsed command line asks for: `--progress -`
/// streams JSONL to stdout (stderr keeps the human log), any other value
/// creates/truncates that file. An absent flag costs nothing.
fn heartbeat_hook(args: &TrainArgs) -> Result<scis_core::HeartbeatHook, String> {
    let Some(path) = &args.progress else {
        return Ok(scis_core::HeartbeatHook::off());
    };
    let writer: Box<dyn std::io::Write + Send> = if path.as_os_str() == "-" {
        Box::new(std::io::stdout())
    } else {
        Box::new(
            std::fs::File::create(path)
                .map_err(|e| format!("creating progress file {:?}: {}", path, e))?,
        )
    };
    Ok(scis_core::HeartbeatHook::to_writer(
        writer,
        std::time::Duration::from_secs_f64(args.progress_interval_secs),
    ))
}

/// Imputes under the chosen method, reporting the anomaly flags that decide
/// the exit code. `orig`/`scaler` carry the pre-normalization view needed
/// to assemble a model bundle for `--save-model`.
#[allow(clippy::too_many_lines)]
fn impute(
    prog: &str,
    args: &TrainArgs,
    ds: &Dataset,
    orig: &Dataset,
    scaler: &MinMaxScaler,
    rng: &mut Rng64,
) -> Result<(Matrix, RunFlags), String> {
    let train = TrainConfig {
        epochs: args.epochs,
        ..TrainConfig::default()
    };
    match args.method.as_str() {
        "scis-gain" => {
            let mut gain = GainImputer::new(train);
            if let Some(path) = &args.load_model {
                // pre-trained bare generator: skip Algorithm 1, just impute
                gain.load_generator(path)
                    .map_err(|e| format!("loading model: {}", e))?;
                eprintln!("{}: loaded generator from {:?}", prog, path);
                let out =
                    scis_imputers::traits::impute_with_generator_chunked(&mut gain, ds, 65_536);
                return Ok((out, RunFlags::default()));
            }
            let n = ds.n_samples();
            let n0 = args.n0.unwrap_or_else(|| 500.min(n / 3).max(8));
            if 2 * n0 > n {
                return Err(format!("n0 = {} too large for {} rows", n0, n));
            }
            let mut config = ScisConfig::default()
                .dim(scis_core::dim::DimConfig::default().train(train))
                .epsilon(args.epsilon)
                .exec(threads_policy(args.threads));
            if args.accel {
                config = config.accel(accel_config(args));
            }
            let mut scis = Scis::new(config);
            if let Some(dir) = &args.checkpoint_dir {
                scis = scis.checkpoints(CheckpointPolicy::new(dir).every(args.checkpoint_every));
            }
            if let Some(secs) = args.deadline_secs {
                scis = scis.deadline(scis_tensor::RunDeadline::after(
                    std::time::Duration::from_secs_f64(secs),
                ));
            }
            if let Some(path) = &args.resume {
                let ckpt = TrainCheckpoint::load(path)
                    .map_err(|e| format!("loading checkpoint {:?}: {}", path, e))?;
                eprintln!(
                    "{}: resuming {} training from epoch {} ({:?})",
                    prog,
                    ckpt.phase.name(),
                    ckpt.epoch,
                    path
                );
                scis = scis.resume_from(ckpt);
            }
            scis = scis.heartbeat(heartbeat_hook(args)?);
            let want_telemetry = args.trace_json.is_some() || args.events.is_some() || args.profile;
            let tel = if want_telemetry {
                scis_telemetry::Telemetry::collecting()
            } else {
                scis_telemetry::Telemetry::off()
            };
            if want_telemetry {
                scis = scis.telemetry(tel.clone());
            }
            let result = scis.try_run(&mut gain, ds, n0, rng);
            // the event stream is most valuable on failure: flush it before
            // surfacing any error so the JSONL doubles as a post-mortem
            if let Some(path) = &args.events {
                write_events(prog, path, &tel)?;
            }
            let outcome = result.map_err(|e| e.to_string())?;
            if let Some(path) = &args.trace_json {
                std::fs::write(path, outcome.report.to_json())
                    .map_err(|e| format!("writing trace {:?}: {}", path, e))?;
                eprintln!("{}: wrote run report to {:?}", prog, path);
            }
            if args.profile {
                eprint!("{}", outcome.report.render_profile());
            }
            eprintln!(
                "{}: trained on n* = {} of {} rows (R_t = {:.2}%), SSE {:.2}s",
                prog,
                outcome.n_star,
                outcome.n_total,
                outcome.training_sample_rate() * 100.0,
                outcome.sse_time.as_secs_f64()
            );
            report_anomalies(prog, &outcome.anomalies);
            if outcome.anomalies.deadline_exceeded {
                eprintln!(
                    "{}: run deadline expired; output comes from the best model so far",
                    prog
                );
            }
            if let Some(path) = &args.save_model {
                if outcome.anomalies.mean_fallback {
                    eprintln!(
                        "{}: not saving a model — training fell back to mean imputation",
                        prog
                    );
                } else {
                    let bundle = build_bundle(&mut gain, orig, scaler, accel_config(args))?;
                    bundle
                        .save(path)
                        .map_err(|e| format!("saving model: {}", e))?;
                    eprintln!("{}: saved model bundle to {:?}", prog, path);
                }
            }
            let flags = RunFlags {
                degraded: outcome.anomalies.is_degraded(),
                deadline_exceeded: outcome.anomalies.deadline_exceeded,
            };
            Ok((outcome.imputed, flags))
        }
        "gain" => Ok((GainImputer::new(train).impute(ds, rng), RunFlags::default())),
        "ginn" => Ok((GinnImputer::new(train).impute(ds, rng), RunFlags::default())),
        "mice" => Ok((MiceImputer::default().impute(ds, rng), RunFlags::default())),
        "missforest" => Ok((
            MissForestImputer::default().impute(ds, rng),
            RunFlags::default(),
        )),
        "knn" => Ok((KnnImputer::default().impute(ds, rng), RunFlags::default())),
        "mean" => Ok((MeanImputer.impute(ds, rng), RunFlags::default())),
        "vae" => Ok((
            VaeImputer {
                config: train,
                ..Default::default()
            }
            .impute(ds, rng),
            RunFlags::default(),
        )),
        other => Err(format!(
            "unknown method {:?} (try scis-gain, gain, ginn, mice, missforest, knn, mean, vae)",
            other
        )),
    }
}

/// Reads, validates, and annotates the input CSV (shared by train/impute).
fn load_input(prog: &str, input: &Path, method: &str) -> Result<Dataset, String> {
    let mut ds = read_dataset(input).map_err(|e| format!("reading {:?}: {}", input, e))?;
    // reject unusable inputs before any training; degenerate (but usable)
    // columns are only warned about here and recorded as anomalies later
    let report = ds
        .validate()
        .map_err(|e| format!("validating {:?}: {}", input, e))?;
    if !report.all_missing_columns.is_empty() {
        eprintln!(
            "{}: warning: columns with no observed cells: {:?}",
            prog, report.all_missing_columns
        );
    }
    // detect ordinal-coded categorical columns so methods with
    // heterogeneous heads treat them properly
    ds.kinds = scis_data::dataset::infer_kinds(&ds.values, 16);
    eprintln!(
        "{}: {} rows x {} cols, {:.2}% missing, method {}",
        prog,
        ds.n_samples(),
        ds.n_features(),
        ds.missing_rate() * 100.0,
        method
    );
    if ds.missing_rate() == 0.0 {
        eprintln!(
            "{}: nothing to do (no missing cells); copying through",
            prog
        );
    }
    Ok(ds)
}

fn run_train(prog: &str, invocation: &str, argv: Vec<String>) -> Result<RunFlags, String> {
    let args = parse_train_args(argv).map_err(|e| {
        format!("{}\nusage: {} INPUT.csv OUTPUT.csv [--method m] [--epsilon e] [--n0 n] [--epochs k] [--threads t] [--seed s] [--accel] [--accel-f32] [--trace-json path] [--events path] [--profile] [--checkpoint-dir dir] [--checkpoint-every n] [--resume path] [--deadline-secs s] [--shard-rows n] [--spill-dir dir] [--progress path|-] [--progress-interval-secs s]", e, invocation)
    })?;
    if args.shard_rows.is_some() {
        return run_train_streamed(prog, &args);
    }
    let ds = load_input(prog, &args.input, &args.method)?;
    // a model *bundle* given to --load-model short-circuits into the
    // apply-only path (it carries its own scaler and schema)
    if let Some(path) = &args.load_model {
        if is_bundle_file(path) {
            let bundle =
                ModelBundle::load(path).map_err(|e| format!("loading model bundle: {}", e))?;
            eprintln!("{}: loaded model bundle from {:?}", prog, path);
            return apply_bundle(
                prog,
                &ds,
                bundle,
                threads_policy(args.threads),
                &args.output,
            );
        }
    }
    let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&ds);
    let mut rng = Rng64::seed_from_u64(args.seed);
    let (imputed_norm, flags) = impute(prog, &args, &norm, &ds, &scaler, &mut rng)?;
    let imputed = scaler.inverse_transform(&imputed_norm);
    let out_ds = Dataset::from_values(imputed);
    write_dataset(&args.output, &out_ds)
        .map_err(|e| format!("writing {:?}: {}", args.output, e))?;
    eprintln!("{}: wrote {:?}", prog, args.output);
    if flags.degraded {
        eprintln!(
            "{}: run completed in DEGRADED mode (see recovery notes above)",
            prog
        );
    }
    if flags.deadline_exceeded {
        eprintln!(
            "{}: run completed under an EXPIRED deadline (exit code 3)",
            prog
        );
    }
    Ok(flags)
}

// ---------------------------------------------------------------------------
// train --shard-rows — the out-of-core streamed pipeline
// ---------------------------------------------------------------------------

fn shard_io_err(path: &Path, e: std::io::Error) -> ShardError {
    ShardError::Io {
        path: path.to_path_buf(),
        source: e,
    }
}

/// A [`ShardSink`] that inverse-transforms each imputed shard back to
/// original units and appends it to the output CSV — the streamed sibling
/// of `inverse_transform` + `write_dataset`, byte-for-byte.
struct CsvSink<'a> {
    w: std::io::BufWriter<std::fs::File>,
    scaler: Option<&'a MinMaxScaler>,
    path: PathBuf,
}

impl<'a> CsvSink<'a> {
    /// Creates the output file and writes the `c0,c1,…` header.
    fn create(
        path: &Path,
        n_cols: usize,
        scaler: Option<&'a MinMaxScaler>,
    ) -> Result<Self, String> {
        use std::io::Write as _;
        let file = std::fs::File::create(path).map_err(|e| format!("writing {:?}: {}", path, e))?;
        let mut w = std::io::BufWriter::new(file);
        let header_err = |e| format!("writing {:?}: {}", path, e);
        for j in 0..n_cols {
            if j > 0 {
                write!(w, ",").map_err(header_err)?;
            }
            write!(w, "c{}", j).map_err(header_err)?;
        }
        writeln!(w).map_err(header_err)?;
        Ok(Self {
            w,
            scaler,
            path: path.to_path_buf(),
        })
    }

    fn finish(mut self) -> Result<(), String> {
        use std::io::Write as _;
        self.w
            .flush()
            .map_err(|e| format!("writing {:?}: {}", self.path, e))
    }
}

impl ShardSink for CsvSink<'_> {
    fn push_rows(&mut self, rows: &Matrix) -> Result<(), ShardError> {
        use std::io::Write as _;
        let out = match self.scaler {
            Some(s) => s.inverse_transform(rows),
            None => rows.clone(),
        };
        let path = self.path.clone();
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                if j > 0 {
                    write!(self.w, ",").map_err(|e| shard_io_err(&path, e))?;
                }
                let v = out[(i, j)];
                if !v.is_nan() {
                    write!(self.w, "{}", v).map_err(|e| shard_io_err(&path, e))?;
                }
            }
            writeln!(self.w).map_err(|e| shard_io_err(&path, e))?;
        }
        Ok(())
    }
}

/// Streams the input CSV into a checksummed spill directory, then runs the
/// same validation / kind-inference / summary logging as [`load_input`] —
/// without ever materializing the full table.
fn spill_input(
    prog: &str,
    input: &Path,
    spill_dir: &Path,
    shard_rows: usize,
    method: &str,
) -> Result<ShardedDataset, String> {
    let mut csv = CsvRows::open(input).map_err(|e| format!("reading {:?}: {}", input, e))?;
    let d = csv.n_cols();
    let mut writer = SpillWriter::create(spill_dir, d, vec![ColumnKind::Continuous; d], shard_rows)
        .map_err(|e| format!("creating spill dir {:?}: {}", spill_dir, e))?;
    for row in &mut csv {
        let row = row.map_err(|e| format!("reading {:?}: {}", input, e))?;
        writer
            .push_row(&row)
            .map_err(|e| format!("spilling to {:?}: {}", spill_dir, e))?;
    }
    if writer.rows_written() == 0 {
        return Err(format!("reading {:?}: no data rows", input));
    }
    let mut sharded = writer
        .finish()
        .map_err(|e| format!("finishing spill {:?}: {}", spill_dir, e))?;
    // same checks and annotations as the in-memory load_input, as
    // one-pass shard folds
    let report = validate_source(&sharded).map_err(|e| format!("validating {:?}: {}", input, e))?;
    if !report.all_missing_columns.is_empty() {
        eprintln!(
            "{}: warning: columns with no observed cells: {:?}",
            prog, report.all_missing_columns
        );
    }
    let kinds = infer_kinds_source(&sharded, 16).map_err(|e| e.to_string())?;
    sharded.set_kinds(kinds);
    let missing = sharded.missing_rate().map_err(|e| e.to_string())?;
    eprintln!(
        "{}: {} rows x {} cols, {:.2}% missing, method {} ({} spill shards of <= {} rows)",
        prog,
        sharded.n_rows(),
        d,
        missing * 100.0,
        method,
        sharded.n_shards(),
        shard_rows,
    );
    if missing == 0.0 {
        eprintln!(
            "{}: nothing to do (no missing cells); copying through",
            prog
        );
    }
    Ok(sharded)
}

/// The spill directory for a run that did not pass `--spill-dir`: derived
/// from the output path, and deleted again after a successful run.
fn derived_spill_dir(output: &Path) -> PathBuf {
    let mut name = output
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "scis-out".into());
    name.push_str(".spill");
    output.with_file_name(name)
}

/// `scis train --shard-rows n`: the full SSE pipeline over spill shards.
/// For the same seed this writes byte-for-byte the CSV the in-memory path
/// writes; peak memory is bounded by the shard size plus the `n*`-row
/// training set instead of `N × d`.
fn run_train_streamed(prog: &str, args: &TrainArgs) -> Result<RunFlags, String> {
    let shard_rows = args.shard_rows.expect("checked by parse_train_args");
    let keep_spill = args.spill_dir.is_some();
    let spill_dir = args
        .spill_dir
        .clone()
        .unwrap_or_else(|| derived_spill_dir(&args.output));
    let sharded = spill_input(prog, &args.input, &spill_dir, shard_rows, &args.method)?;
    let n = sharded.n_rows();
    let d = sharded.n_cols();

    let scaler = MinMaxScaler::fit_source(&sharded).map_err(|e| e.to_string())?;
    let scaled = ScaledSource::new(&sharded, &scaler);

    let train = TrainConfig {
        epochs: args.epochs,
        ..TrainConfig::default()
    };
    let n0 = args.n0.unwrap_or_else(|| 500.min(n / 3).max(8));
    if 2 * n0 > n {
        return Err(format!("n0 = {} too large for {} rows", n0, n));
    }
    let mut config = ScisConfig::default()
        .dim(scis_core::dim::DimConfig::default().train(train))
        .epsilon(args.epsilon)
        .exec(threads_policy(args.threads));
    if args.accel {
        config = config.accel(accel_config(args));
    }
    let mut scis = Scis::new(config);
    if let Some(dir) = &args.checkpoint_dir {
        scis = scis.checkpoints(CheckpointPolicy::new(dir).every(args.checkpoint_every));
    }
    if let Some(secs) = args.deadline_secs {
        scis = scis.deadline(scis_tensor::RunDeadline::after(
            std::time::Duration::from_secs_f64(secs),
        ));
    }
    if let Some(path) = &args.resume {
        let ckpt = TrainCheckpoint::load(path)
            .map_err(|e| format!("loading checkpoint {:?}: {}", path, e))?;
        eprintln!(
            "{}: resuming {} training from epoch {} ({:?})",
            prog,
            ckpt.phase.name(),
            ckpt.epoch,
            path
        );
        scis = scis.resume_from(ckpt);
    }
    scis = scis.heartbeat(heartbeat_hook(args)?);
    let want_telemetry = args.trace_json.is_some() || args.events.is_some() || args.profile;
    let tel = if want_telemetry {
        scis_telemetry::Telemetry::collecting()
    } else {
        scis_telemetry::Telemetry::off()
    };
    if want_telemetry {
        scis = scis.telemetry(tel.clone());
    }

    let mut gain = GainImputer::new(train);
    let mut rng = Rng64::seed_from_u64(args.seed);
    let mut sink = CsvSink::create(&args.output, d, Some(&scaler))?;
    let result = scis.try_run_streamed(&mut gain, &scaled, n0, &mut rng, &mut sink);
    if let Some(path) = &args.events {
        write_events(prog, path, &tel)?;
    }
    let outcome = result.map_err(|e| e.to_string())?;
    sink.finish()?;
    if let Some(path) = &args.trace_json {
        std::fs::write(path, outcome.report.to_json())
            .map_err(|e| format!("writing trace {:?}: {}", path, e))?;
        eprintln!("{}: wrote run report to {:?}", prog, path);
    }
    if args.profile {
        eprint!("{}", outcome.report.render_profile());
    }
    eprintln!(
        "{}: trained on n* = {} of {} rows (R_t = {:.2}%), SSE {:.2}s",
        prog,
        outcome.n_star,
        outcome.n_total,
        outcome.training_sample_rate() * 100.0,
        outcome.sse_time.as_secs_f64()
    );
    report_anomalies(prog, &outcome.anomalies);
    if outcome.anomalies.deadline_exceeded {
        eprintln!(
            "{}: run deadline expired; output comes from the best model so far",
            prog
        );
    }
    eprintln!("{}: wrote {:?}", prog, args.output);
    if !keep_spill {
        std::fs::remove_dir_all(&spill_dir).ok();
    } else {
        eprintln!("{}: kept spill shards in {:?}", prog, spill_dir);
    }
    let flags = RunFlags {
        degraded: outcome.anomalies.is_degraded(),
        deadline_exceeded: outcome.anomalies.deadline_exceeded,
    };
    if flags.degraded {
        eprintln!(
            "{}: run completed in DEGRADED mode (see recovery notes above)",
            prog
        );
    }
    if flags.deadline_exceeded {
        eprintln!(
            "{}: run completed under an EXPIRED deadline (exit code 3)",
            prog
        );
    }
    Ok(flags)
}

// ---------------------------------------------------------------------------
// impute — apply-only
// ---------------------------------------------------------------------------

/// True when the file starts with the model-bundle magic line.
fn is_bundle_file(path: &Path) -> bool {
    use std::io::Read as _;
    let mut buf = [0u8; 16];
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let Ok(n) = f.read(&mut buf) else {
        return false;
    };
    buf[..n].starts_with(b"scis-bundle v1")
}

/// Fills every missing cell of `ds` through an [`ImputeService`] built on
/// `bundle` — the same code path the HTTP server runs, chunked so memory
/// stays bounded on large inputs.
fn apply_bundle(
    prog: &str,
    ds: &Dataset,
    bundle: ModelBundle,
    exec: ExecPolicy,
    output: &Path,
) -> Result<RunFlags, String> {
    bundle
        .validate_width(ds.n_features())
        .map_err(|e| format!("input does not match the model bundle: {}", e))?;
    let mut svc = ImputeService::new(bundle, exec, scis_telemetry::Telemetry::off());
    let n = ds.n_samples();
    let d = ds.n_features();
    let mut filled: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut degraded = false;
    const CHUNK: usize = 8192;
    let mut start = 0;
    while start < n {
        let end = (start + CHUNK).min(n);
        let rows: Vec<ImputeRow> = (start..end)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        let v = ds.values[(i, j)];
                        if v.is_nan() {
                            None
                        } else {
                            Some(v)
                        }
                    })
                    .collect()
            })
            .collect();
        let result = svc.impute_rows(&rows);
        degraded |= result.degraded;
        filled.extend(result.rows);
        start = end;
    }
    let out = Matrix::from_fn(n, d, |i, j| filled[i][j]);
    write_dataset(output, &Dataset::from_values(out))
        .map_err(|e| format!("writing {:?}: {}", output, e))?;
    eprintln!("{}: wrote {:?}", prog, output);
    if degraded {
        eprintln!(
            "{}: run completed in DEGRADED mode (generator output was non-finite; \
             column means served instead)",
            prog
        );
    }
    Ok(RunFlags {
        degraded,
        deadline_exceeded: false,
    })
}

/// `scis impute --shard-rows n`: applies a model bundle shard by shard,
/// writing finished rows to the output CSV incrementally.
fn apply_bundle_streamed(
    prog: &str,
    src: &ShardedDataset,
    bundle: ModelBundle,
    exec: ExecPolicy,
    output: &Path,
) -> Result<RunFlags, String> {
    bundle
        .validate_width(src.n_cols())
        .map_err(|e| format!("input does not match the model bundle: {}", e))?;
    let mut svc = ImputeService::new(bundle, exec, scis_telemetry::Telemetry::off());
    let d = src.n_cols();
    let mut degraded = false;
    let mut sink = CsvSink::create(output, d, None)?;
    for k in 0..src.n_shards() {
        let shard = src
            .load_shard(k)
            .map_err(|e| format!("loading shard {}: {}", k, e))?;
        let rows: Vec<ImputeRow> = (0..shard.n_samples())
            .map(|i| {
                (0..d)
                    .map(|j| {
                        let v = shard.values[(i, j)];
                        if v.is_nan() {
                            None
                        } else {
                            Some(v)
                        }
                    })
                    .collect()
            })
            .collect();
        let result = svc.impute_rows(&rows);
        degraded |= result.degraded;
        let block = Matrix::from_fn(result.rows.len(), d, |i, j| result.rows[i][j]);
        sink.push_rows(&block)
            .map_err(|e| format!("writing {:?}: {}", output, e))?;
    }
    sink.finish()?;
    eprintln!("{}: wrote {:?}", prog, output);
    if degraded {
        eprintln!(
            "{}: run completed in DEGRADED mode (generator output was non-finite; \
             column means served instead)",
            prog
        );
    }
    Ok(RunFlags {
        degraded,
        deadline_exceeded: false,
    })
}

fn run_impute(prog: &str, argv: Vec<String>) -> Result<RunFlags, String> {
    const USAGE: &str = "usage: scis impute INPUT.csv OUTPUT.csv --model PATH [--threads t] \
[--shard-rows n] [--spill-dir dir]";
    let mut input = None;
    let mut output = None;
    let mut model = None;
    let mut threads = None;
    let mut shard_rows = None;
    let mut spill_dir: Option<PathBuf> = None;
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next()
                .ok_or(format!("{} needs a value\n{}", arg, USAGE))
        };
        match arg.as_str() {
            "--model" | "--load-model" => model = Some(PathBuf::from(value()?)),
            "--threads" => {
                threads = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--threads: {}\n{}", e, USAGE))?,
                )
            }
            "--shard-rows" => {
                shard_rows = Some(
                    value()?
                        .parse::<usize>()
                        .map_err(|e| format!("--shard-rows: {}\n{}", e, USAGE))?,
                )
            }
            "--spill-dir" => spill_dir = Some(PathBuf::from(value()?)),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {}\n{}", other, USAGE))
            }
            _ if input.is_none() => input = Some(PathBuf::from(arg)),
            _ if output.is_none() => output = Some(PathBuf::from(arg)),
            other => return Err(format!("unexpected argument {:?}\n{}", other, USAGE)),
        }
    }
    let input = input.ok_or(format!("missing INPUT.csv\n{}", USAGE))?;
    let output = output.ok_or(format!("missing OUTPUT.csv\n{}", USAGE))?;
    let model = model.ok_or(format!("--model is required\n{}", USAGE))?;
    if shard_rows == Some(0) {
        return Err(format!("--shard-rows must be at least 1\n{}", USAGE));
    }
    if spill_dir.is_some() && shard_rows.is_none() {
        return Err(format!("--spill-dir requires --shard-rows\n{}", USAGE));
    }
    if let Some(shard_rows) = shard_rows {
        if !is_bundle_file(&model) {
            return Err(format!(
                "--shard-rows needs a model *bundle* (bare v2 generator files refit their \
                 scaler on the whole input)\n{}",
                USAGE
            ));
        }
        let keep_spill = spill_dir.is_some();
        let dir = spill_dir.unwrap_or_else(|| derived_spill_dir(&output));
        let sharded = spill_input(prog, &input, &dir, shard_rows, "scis-gain (apply-only)")?;
        let bundle =
            ModelBundle::load(&model).map_err(|e| format!("loading model bundle: {}", e))?;
        eprintln!("{}: loaded model bundle from {:?}", prog, model);
        let flags =
            apply_bundle_streamed(prog, &sharded, bundle, threads_policy(threads), &output)?;
        if !keep_spill {
            std::fs::remove_dir_all(&dir).ok();
        } else {
            eprintln!("{}: kept spill shards in {:?}", prog, dir);
        }
        return Ok(flags);
    }
    let ds = load_input(prog, &input, "scis-gain (apply-only)")?;
    if is_bundle_file(&model) {
        let bundle =
            ModelBundle::load(&model).map_err(|e| format!("loading model bundle: {}", e))?;
        eprintln!("{}: loaded model bundle from {:?}", prog, model);
        apply_bundle(prog, &ds, bundle, threads_policy(threads), &output)
    } else {
        // bare v2 generator file (pre-bundle artifact): old semantics — the
        // scaler is refitted on the input being imputed
        let mut gain = GainImputer::new(TrainConfig::default());
        gain.load_generator(&model)
            .map_err(|e| format!("loading model: {}", e))?;
        eprintln!("{}: loaded generator from {:?}", prog, model);
        let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&ds);
        let out = scis_imputers::traits::impute_with_generator_chunked(&mut gain, &norm, 65_536);
        let imputed = scaler.inverse_transform(&out);
        write_dataset(&output, &Dataset::from_values(imputed))
            .map_err(|e| format!("writing {:?}: {}", output, e))?;
        eprintln!("{}: wrote {:?}", prog, output);
        Ok(RunFlags::default())
    }
}

// ---------------------------------------------------------------------------
// serve — the online server
// ---------------------------------------------------------------------------

fn run_serve(prog: &str, argv: Vec<String>) -> Result<RunFlags, String> {
    const USAGE: &str =
        "usage: scis serve --model PATH [--addr host:port] [--threads t|serial|auto] \
[--queue-cap n] [--batch-rows n] [--flush-micros us] [--max-body-bytes n] [--access-log path]";
    let mut model = None;
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServerConfig::default()
    };
    let mut batch = BatchConfig::default();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next()
                .ok_or(format!("{} needs a value\n{}", arg, USAGE))
        };
        let parse_usize = |flag: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|e| format!("{}: {}\n{}", flag, e, USAGE))
        };
        match arg.as_str() {
            "--model" => model = Some(PathBuf::from(value()?)),
            "--addr" => cfg.addr = value()?,
            "--threads" => {
                cfg.exec = ExecPolicy::parse(&value()?)
                    .map_err(|e| format!("--threads: {}\n{}", e, USAGE))?
            }
            "--queue-cap" => batch.queue_cap = parse_usize("--queue-cap", value()?)?,
            "--batch-rows" => batch.max_batch_rows = parse_usize("--batch-rows", value()?)?,
            "--flush-micros" => {
                batch.flush_micros = value()?
                    .parse()
                    .map_err(|e| format!("--flush-micros: {}\n{}", e, USAGE))?
            }
            "--max-body-bytes" => cfg.max_body_bytes = parse_usize("--max-body-bytes", value()?)?,
            "--access-log" => cfg.access_log = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag {}\n{}", other, USAGE)),
        }
    }
    let model = model.ok_or(format!("--model is required\n{}", USAGE))?;
    cfg.batch = batch;
    let bundle = ModelBundle::load(&model).map_err(|e| format!("loading model bundle: {}", e))?;
    eprintln!(
        "{}: serving {:?} ({} columns) — POST /impute, GET /healthz, GET /statz, GET /metricsz",
        prog,
        model,
        bundle.n_features()
    );
    let telemetry = scis_telemetry::Telemetry::collecting();
    let server =
        Server::start(bundle, cfg, telemetry).map_err(|e| format!("starting server: {}", e))?;
    // scripts scrape this line for the resolved (possibly ephemeral) port
    println!("listening on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // serve until the process is killed
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

// ---------------------------------------------------------------------------
// report — summarize JSON artifacts
// ---------------------------------------------------------------------------

fn render_json(out: &mut String, value: &scis_serve::json::Json, indent: usize) {
    use scis_serve::json::Json;
    let pad = "  ".repeat(indent);
    match value {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                match v {
                    Json::Obj(_) | Json::Arr(_) => {
                        out.push_str(&format!("{}{}:\n", pad, k));
                        render_json(out, v, indent + 1);
                    }
                    _ => render_json_leaf(out, &pad, k, v),
                }
            }
        }
        Json::Arr(items) => {
            // long numeric arrays (metric series) are summarized, not dumped
            let nums: Vec<f64> = items.iter().filter_map(|i| i.as_f64()).collect();
            if nums.len() == items.len() && nums.len() > 8 {
                let (min, max) = nums
                    .iter()
                    .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
                out.push_str(&format!(
                    "{}[{} values, first {}, last {}, min {}, max {}]\n",
                    pad,
                    nums.len(),
                    nums[0],
                    nums[nums.len() - 1],
                    min,
                    max
                ));
            } else {
                for (i, item) in items.iter().enumerate() {
                    match item {
                        Json::Obj(_) | Json::Arr(_) => {
                            out.push_str(&format!("{}- [{}]\n", pad, i));
                            render_json(out, item, indent + 1);
                        }
                        _ => render_json_leaf(out, &pad, &format!("[{}]", i), item),
                    }
                }
            }
        }
        other => render_json_leaf(out, &pad, "value", other),
    }
}

fn render_json_leaf(out: &mut String, pad: &str, key: &str, v: &scis_serve::json::Json) {
    use scis_serve::json::Json;
    let rendered = match v {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => scis_telemetry::json_f64(*n),
        Json::Str(s) => s.clone(),
        _ => unreachable!("containers handled by render_json"),
    };
    out.push_str(&format!("{}{}: {}\n", pad, key, rendered));
}

/// Summarizes a heartbeat JSONL stream (`scis train --progress`): one line
/// per phase with the last record's position plus stream-wide peaks.
fn render_heartbeat_jsonl(out: &mut String, records: &[scis_serve::json::Json]) {
    let f = |r: &scis_serve::json::Json, k: &str| r.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
    out.push_str(&format!("heartbeat stream: {} records\n", records.len()));
    // the last record per phase, in order of first appearance
    let mut phases: Vec<(String, &scis_serve::json::Json)> = Vec::new();
    for r in records {
        let phase = r
            .get("phase")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        match phases.iter_mut().find(|(p, _)| *p == phase) {
            Some(slot) => slot.1 = r,
            None => phases.push((phase, r)),
        }
    }
    for (phase, r) in &phases {
        out.push_str(&format!(
            "  {}: epoch {}/{}, shard {}/{}, rows {}/{}, {:.1} rows/s, eta {:.1}s, rollbacks {}\n",
            phase,
            f(r, "epoch"),
            f(r, "epochs"),
            f(r, "shard"),
            f(r, "shards"),
            f(r, "rows_done"),
            f(r, "rows_total"),
            f(r, "rows_per_sec"),
            f(r, "eta_secs"),
            f(r, "rollbacks"),
        ));
    }
    if let Some(last) = records.last() {
        out.push_str(&format!(
            "  elapsed {:.2}s, peak rss {:.1} MiB\n",
            f(last, "elapsed_secs"),
            f(last, "peak_rss_bytes") / (1024.0 * 1024.0),
        ));
    }
}

/// Summarizes a serve access log (`scis serve --access-log`): request and
/// row totals, status mix, latency range, degraded count.
fn render_access_log_jsonl(out: &mut String, records: &[scis_serve::json::Json]) {
    let f = |r: &scis_serve::json::Json, k: &str| r.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
    out.push_str(&format!("access log: {} requests\n", records.len()));
    let mut statuses: Vec<(u64, usize)> = Vec::new();
    let (mut rows, mut degraded) = (0u64, 0usize);
    let (mut lat_min, mut lat_max, mut lat_sum) = (f64::MAX, 0f64, 0f64);
    for r in records {
        let status = f(r, "status") as u64;
        match statuses.iter_mut().find(|(s, _)| *s == status) {
            Some(slot) => slot.1 += 1,
            None => statuses.push((status, 1)),
        }
        rows += f(r, "rows") as u64;
        degraded += (f(r, "degraded") as u64 != 0) as usize;
        let lat = f(r, "latency_ns");
        lat_min = lat_min.min(lat);
        lat_max = lat_max.max(lat);
        lat_sum += lat;
    }
    statuses.sort_unstable();
    for (status, count) in &statuses {
        out.push_str(&format!("  status {}: {}\n", status, count));
    }
    out.push_str(&format!("  rows: {}, degraded: {}\n", rows, degraded));
    if !records.is_empty() {
        out.push_str(&format!(
            "  latency_ns: min {:.0}, mean {:.0}, max {:.0}\n",
            lat_min,
            lat_sum / records.len() as f64,
            lat_max
        ));
    }
}

/// Renders a JSONL file (one JSON object per line). Heartbeat streams and
/// access logs get schema-aware summaries; anything else falls back to a
/// per-record dump.
fn render_jsonl(out: &mut String, path: &str, text: &str) -> Result<(), String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc =
            scis_serve::json::parse(line).map_err(|e| format!("{} line {}: {}", path, i + 1, e))?;
        records.push(doc);
    }
    if records.is_empty() {
        return Err(format!("{}: empty file", path));
    }
    let first = &records[0];
    let is_heartbeat = first.get("type").and_then(|v| v.as_str()) == Some("heartbeat");
    let is_access_log = first.get("trace_id").is_some() && first.get("status").is_some();
    if is_heartbeat {
        render_heartbeat_jsonl(out, &records);
    } else if is_access_log {
        render_access_log_jsonl(out, &records);
    } else {
        for (i, r) in records.iter().enumerate() {
            out.push_str(&format!("- [{}]\n", i));
            render_json(out, r, 1);
        }
    }
    Ok(())
}

fn run_report(argv: Vec<String>) -> Result<RunFlags, String> {
    if argv.is_empty() {
        return Err("usage: scis report FILE.json [FILE.jsonl ...]".into());
    }
    for path in &argv {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading {:?}: {}", path, e))?;
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", path));
        // a whole-file parse accepts every single-document artifact; what it
        // rejects is retried as JSONL (heartbeat streams, access logs)
        match scis_serve::json::parse(&text) {
            Ok(doc) => render_json(&mut out, &doc, 0),
            Err(e) => {
                render_jsonl(&mut out, path, &text)
                    .map_err(|le| format!("{}: not JSON ({}) and not JSONL ({})", path, e, le))?;
            }
        }
        print!("{}", out);
    }
    Ok(RunFlags::default())
}
