#![warn(missing_docs)]

//! SCIS reproduction facade crate.
pub use scis_core as core;
pub use scis_data as data;
pub use scis_imputers as imputers;
pub use scis_nn as nn;
pub use scis_ot as ot;
pub use scis_tensor as tensor;
