#![warn(missing_docs)]

//! SCIS reproduction facade crate.
//!
//! Most programs only need the [`prelude`]:
//!
//! ```
//! use scis_repro::prelude::*;
//!
//! let cfg = ScisConfig::default().exec(ExecPolicy::threads(2));
//! let scis = Scis::new(cfg);
//! assert_eq!(scis.config().dim.exec, ExecPolicy::threads(2));
//! ```
pub use scis_core as core;
pub use scis_data as data;
pub use scis_imputers as imputers;
pub use scis_nn as nn;
pub use scis_ot as ot;
pub use scis_telemetry as telemetry;
pub use scis_tensor as tensor;

/// One-stop imports for the common SCIS workflow: load a [`Dataset`],
/// configure [`ScisConfig`] fluently (including the [`ExecPolicy`] used by
/// every compute layer), wrap a GAN imputer, and run [`Scis`].
pub mod prelude {
    pub use scis_core::dim::{AccelConfig, DimConfig, DimReport, GenerativeLoss, LambdaMode};
    pub use scis_core::error::{ScisError, TrainingError};
    pub use scis_core::guard::GuardConfig;
    pub use scis_core::pipeline::{RunAnomalies, Scis, ScisConfig, ScisOutcome};
    pub use scis_core::report::RunReport;
    pub use scis_core::sse::{SseConfig, SseProbe, SseResult};
    pub use scis_data::{Dataset, MaskMatrix};
    pub use scis_imputers::{AdversarialImputer, GainImputer, GinnImputer, Imputer, TrainConfig};
    pub use scis_ot::{SinkhornOptions, SinkhornResult};
    pub use scis_telemetry::{Counter, Event, Hist, RecordedEvent, Series, SpanKind, Telemetry};
    pub use scis_tensor::{ExecPolicy, Matrix, Rng64};
}
