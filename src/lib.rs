#![warn(missing_docs)]

//! SCIS reproduction facade crate.
//!
//! The stable, documented entry point is [`api`]; [`prelude`] is the
//! wildcard-import convenience over the same surface:
//!
//! ```
//! use scis_repro::prelude::*;
//!
//! let cfg = ScisConfig::default().exec(ExecPolicy::threads(2));
//! let scis = Scis::new(cfg);
//! assert_eq!(scis.config().dim.exec, ExecPolicy::threads(2));
//! ```
pub mod api;
pub mod cli;

pub use scis_core as core;
pub use scis_data as data;
pub use scis_imputers as imputers;
pub use scis_nn as nn;
pub use scis_ot as ot;
pub use scis_serve as serve;
pub use scis_telemetry as telemetry;
pub use scis_tensor as tensor;

/// One-stop imports for the common SCIS workflows: load a [`Dataset`],
/// configure [`ScisConfig`] fluently (including the [`ExecPolicy`] used by
/// every compute layer), wrap a GAN imputer, run [`Scis`], and serve the
/// trained model through a [`ModelBundle`] / [`ImputeService`].
///
/// The prelude deliberately stops at the workflow layer: solver internals
/// (`SinkhornOptions`, `MaskedRows`) and the raw telemetry slab enums
/// (`Counter`, `Hist`, `Series`, …) are not re-exported here — import them
/// from their home crates ([`crate::ot`], [`crate::telemetry`]) when a
/// program genuinely reaches below the facade.
pub mod prelude {
    pub use scis_core::dim::{AccelConfig, DimConfig, DimReport, GenerativeLoss, LambdaMode};
    pub use scis_core::error::{ScisError, TrainingError};
    pub use scis_core::guard::GuardConfig;
    pub use scis_core::pipeline::{RunAnomalies, Scis, ScisConfig, ScisOutcome};
    pub use scis_core::report::RunReport;
    pub use scis_core::sse::{SseConfig, SseProbe, SseResult};
    pub use scis_data::{Dataset, MaskMatrix};
    pub use scis_imputers::{AdversarialImputer, GainImputer, GinnImputer, Imputer, TrainConfig};
    pub use scis_serve::batcher::BatchConfig;
    pub use scis_serve::bundle::{BundleError, ColumnMeta, ModelBundle};
    pub use scis_serve::server::{Server, ServerConfig};
    pub use scis_serve::service::{ImputeResult, ImputeRow, ImputeService, ServeError};
    pub use scis_telemetry::Telemetry;
    pub use scis_tensor::{ExecPolicy, Matrix, Rng64};
}
