//! `scis` — the SCIS multitool.
//!
//! ```sh
//! scis train  INPUT.csv OUTPUT.csv [flags]    # SSE pipeline; --save-model writes a bundle
//! scis impute INPUT.csv OUTPUT.csv --model m  # apply a saved model, no training
//! scis serve  --model m [--addr host:port]    # online HTTP imputation server
//! scis report FILE.json [...]                 # summarize JSON artifacts
//! ```
//!
//! Flag documentation lives on [`scis_repro::cli`]; `scis help` prints the
//! short form. The legacy `scis-impute INPUT OUTPUT [flags]` binary still
//! works for one release and maps to `scis train`.

use std::process::ExitCode;

fn main() -> ExitCode {
    scis_repro::cli::run_scis()
}
