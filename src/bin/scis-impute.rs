//! `scis-impute` — deprecated single-command CLI, kept for one release.
//!
//! ```sh
//! cargo run --release --bin scis-impute -- INPUT.csv OUTPUT.csv [options]
//! ```
//!
//! This is now a compatibility shim over `scis train`: every flag, message,
//! and exit code behaves exactly as before, plus a deprecation notice on
//! stderr. New scripts should call the `scis` multitool instead:
//!
//! ```sh
//! scis train INPUT.csv OUTPUT.csv [options]     # this binary's behavior
//! scis impute INPUT.csv OUTPUT.csv --model m    # apply-only runs
//! ```
//!
//! The full flag reference lives on [`scis_repro::cli`]. Exit codes: `0`
//! clean success, `1` error, `2` degraded success, `3` deadline-exceeded
//! success.

use std::process::ExitCode;

fn main() -> ExitCode {
    scis_repro::cli::run_legacy_impute()
}
