//! `scis-impute` — command-line imputation for numeric CSV files.
//!
//! ```sh
//! cargo run --release --bin scis-impute -- INPUT.csv OUTPUT.csv [options]
//! ```
//!
//! The input is a numeric CSV with a header row; empty cells are missing.
//! The output is the same table with every cell filled. Options:
//!
//! * `--method <scis-gain|gain|ginn|mice|missforest|knn|mean|vae>`
//!   (default `scis-gain`)
//! * `--epsilon <f64>`   SSE error bound (default 0.001, scis-gain only)
//! * `--n0 <usize>`      initial sample size (default min(500, N/3))
//! * `--epochs <usize>`  training epochs (default 100; must be ≥ 1)
//! * `--threads <usize>` worker threads for the compute kernels (`0` =
//!   serial). Defaults to the `SCIS_THREADS` environment variable, then to
//!   the machine's available parallelism. Results are bit-identical for
//!   any thread count.
//! * `--seed <u64>`      RNG seed (default 42)
//! * `--accel`           enable the Sinkhorn hot-path accelerations
//!   (warm-start dual cache, decomposed GEMM cost kernel, ε-scaled cold
//!   solves; scis-gain only). Off by default: the accelerated path solves
//!   the same transport problems to the same tolerance but is not
//!   bit-identical to the reference path.
//! * `--save-model <path>` persist the trained generator (scis-gain only)
//! * `--load-model <path>` impute with a previously saved generator,
//!   skipping training entirely (scis-gain only)
//! * `--trace-json <path>` write a structured JSON run report (phase
//!   wall-clock, solve/batch/guard counters, per-epoch metric series,
//!   latency histograms, SSE search trace) after the run (scis-gain only;
//!   incompatible with `--load-model`, which skips the pipeline). Counter,
//!   series, and iteration-histogram values are bit-identical for any
//!   `--threads` setting; only timings vary.
//! * `--events <path>` write the flight recorder's typed event stream as
//!   JSON Lines — one `{"seq":…,"type":…,…}` object per line — after the
//!   run, *including* when the run fails (the tail doubles as a
//!   post-mortem). The recorder is a bounded ring
//!   ([`scis_telemetry::FLIGHT_RECORDER_CAP`] events); gaps in `seq`
//!   reveal truncation. scis-gain only, incompatible with `--load-model`.
//! * `--profile` print a hierarchical phase-timing tree (from the same
//!   run report) to stderr after the run (scis-gain only, incompatible
//!   with `--load-model`).
//! * `--checkpoint-dir <dir>` write crash-safe training checkpoints
//!   (atomic rename, checksummed) into `<dir>` at epoch boundaries, and an
//!   emergency checkpoint when training gives up or the deadline expires
//!   (scis-gain only).
//! * `--checkpoint-every <n>` checkpoint every `n` epochs (default 1;
//!   requires `--checkpoint-dir`).
//! * `--resume <path>` resume training from a checkpoint written by
//!   `--checkpoint-dir`. The run replays deterministically up to the
//!   checkpointed phase, fast-forwards to the recorded epoch, and produces
//!   bit-identical final imputations to an uninterrupted run with the same
//!   seed and configuration (scis-gain only, incompatible with
//!   `--load-model`).
//! * `--deadline-secs <f64>` cooperative run deadline: when the wall-clock
//!   budget expires, training stops at the last clean epoch boundary,
//!   writes an emergency checkpoint (if `--checkpoint-dir` is set), skips
//!   any remaining SSE/retrain work, and finishes with the best model so
//!   far (scis-gain only).
//!
//! Exit codes: `0` clean success, `1` error (bad arguments, unreadable
//! input, non-finite observed values, training unrecoverable), `2`
//! *degraded* success — the fault-tolerant runtime produced a complete
//! output but had to fall back (mean imputation, kept `M0` after a failed
//! retrain, or patched non-finite cells); details go to stderr — and `3`
//! *deadline-exceeded* success: the `--deadline-secs` budget expired and
//! the output was produced by the best model trained so far (takes
//! precedence over `2`).

use scis_core::pipeline::{Scis, ScisConfig};
use scis_core::{CheckpointPolicy, TrainCheckpoint};
use scis_data::csvio::{read_dataset, write_dataset};
use scis_data::normalize::MinMaxScaler;
use scis_data::Dataset;
use scis_imputers::knn::KnnImputer;
use scis_imputers::mean::MeanImputer;
use scis_imputers::mice::MiceImputer;
use scis_imputers::missforest::MissForestImputer;
use scis_imputers::vaei::VaeImputer;
use scis_imputers::{GainImputer, GinnImputer, Imputer, TrainConfig};
use scis_tensor::ExecPolicy;
use scis_tensor::{Matrix, Rng64};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    input: PathBuf,
    output: PathBuf,
    method: String,
    epsilon: f64,
    n0: Option<usize>,
    epochs: usize,
    threads: Option<usize>,
    seed: u64,
    save_model: Option<PathBuf>,
    load_model: Option<PathBuf>,
    trace_json: Option<PathBuf>,
    events: Option<PathBuf>,
    profile: bool,
    accel: bool,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: usize,
    resume: Option<PathBuf>,
    deadline_secs: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let input = PathBuf::from(args.next().ok_or("missing INPUT.csv")?);
    let output = PathBuf::from(args.next().ok_or("missing OUTPUT.csv")?);
    let mut parsed = Args {
        input,
        output,
        method: "scis-gain".into(),
        epsilon: 0.001,
        n0: None,
        epochs: 100,
        threads: None,
        seed: 42,
        save_model: None,
        load_model: None,
        trace_json: None,
        events: None,
        profile: false,
        accel: false,
        checkpoint_dir: None,
        checkpoint_every: 1,
        resume: None,
        deadline_secs: None,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("{} needs a value", flag));
        match flag.as_str() {
            "--method" => parsed.method = value()?,
            "--epsilon" => {
                parsed.epsilon = value()?.parse().map_err(|e| format!("--epsilon: {}", e))?
            }
            "--n0" => parsed.n0 = Some(value()?.parse().map_err(|e| format!("--n0: {}", e))?),
            "--epochs" => {
                parsed.epochs = value()?.parse().map_err(|e| format!("--epochs: {}", e))?
            }
            "--threads" => {
                parsed.threads = Some(value()?.parse().map_err(|e| format!("--threads: {}", e))?)
            }
            "--seed" => parsed.seed = value()?.parse().map_err(|e| format!("--seed: {}", e))?,
            "--save-model" => parsed.save_model = Some(PathBuf::from(value()?)),
            "--load-model" => parsed.load_model = Some(PathBuf::from(value()?)),
            "--trace-json" => parsed.trace_json = Some(PathBuf::from(value()?)),
            "--events" => parsed.events = Some(PathBuf::from(value()?)),
            "--profile" => parsed.profile = true,
            "--accel" => parsed.accel = true,
            "--checkpoint-dir" => parsed.checkpoint_dir = Some(PathBuf::from(value()?)),
            "--checkpoint-every" => {
                parsed.checkpoint_every = value()?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {}", e))?
            }
            "--resume" => parsed.resume = Some(PathBuf::from(value()?)),
            "--deadline-secs" => {
                parsed.deadline_secs = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--deadline-secs: {}", e))?,
                )
            }
            other => return Err(format!("unknown flag {}", other)),
        }
    }
    if parsed.epochs == 0 {
        return Err("--epochs must be at least 1".into());
    }
    if parsed.method != "scis-gain" && (parsed.save_model.is_some() || parsed.load_model.is_some())
    {
        return Err(format!(
            "--save-model/--load-model only apply to --method scis-gain (got {:?})",
            parsed.method
        ));
    }
    if parsed.accel && parsed.method != "scis-gain" {
        return Err(format!(
            "--accel only applies to --method scis-gain (got {:?})",
            parsed.method
        ));
    }
    if parsed.checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    if parsed.checkpoint_every != 1 && parsed.checkpoint_dir.is_none() {
        return Err("--checkpoint-every requires --checkpoint-dir".into());
    }
    if parsed.resume.is_some() && parsed.load_model.is_some() {
        return Err("--resume is incompatible with --load-model (no training runs)".into());
    }
    if let Some(d) = parsed.deadline_secs {
        if !d.is_finite() || d <= 0.0 {
            return Err(format!(
                "--deadline-secs must be a positive finite number (got {})",
                d
            ));
        }
    }
    for (set, flag) in [
        (parsed.trace_json.is_some(), "--trace-json"),
        (parsed.events.is_some(), "--events"),
        (parsed.profile, "--profile"),
        (parsed.checkpoint_dir.is_some(), "--checkpoint-dir"),
        (parsed.resume.is_some(), "--resume"),
        (parsed.deadline_secs.is_some(), "--deadline-secs"),
    ] {
        if !set {
            continue;
        }
        if parsed.method != "scis-gain" {
            return Err(format!(
                "{} only applies to --method scis-gain (got {:?})",
                flag, parsed.method
            ));
        }
        if parsed.load_model.is_some() {
            return Err(format!(
                "{} is incompatible with --load-model (no pipeline runs)",
                flag
            ));
        }
    }
    Ok(parsed)
}

/// Prints the fault-tolerant runtime's recovery summary to stderr.
fn report_anomalies(a: &scis_core::RunAnomalies) {
    if a.is_clean() {
        return;
    }
    eprintln!(
        "scis-impute: anomalies — {} NaN batches skipped, {} rollbacks, {} LR backoffs, \
         {} sinkhorn escalations ({} unconverged), {} non-finite cells patched",
        a.nan_batches_skipped,
        a.rollbacks,
        a.lr_backoffs,
        a.sinkhorn_escalations,
        a.sinkhorn_unconverged,
        a.non_finite_cells_patched,
    );
    if !a.all_missing_columns.is_empty() {
        eprintln!(
            "scis-impute: columns with no observed cells: {:?}",
            a.all_missing_columns
        );
    }
    if !a.constant_columns.is_empty() {
        eprintln!("scis-impute: constant columns: {:?}", a.constant_columns);
    }
    for note in &a.notes {
        eprintln!("scis-impute: recovery: {}", note);
    }
}

/// Writes the flight recorder's buffered event stream as JSON Lines.
fn write_events(path: &PathBuf, tel: &scis_telemetry::Telemetry) -> Result<(), String> {
    let events = tel.events();
    let mut out = String::new();
    for ev in &events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| format!("writing events {:?}: {}", path, e))?;
    eprintln!(
        "scis-impute: wrote {} flight-recorder events to {:?}",
        events.len(),
        path
    );
    Ok(())
}

/// Resolves `--threads` to an [`ExecPolicy`]: `0` forces serial execution,
/// `n ≥ 1` pins `n` workers, and an absent flag defers to `SCIS_THREADS` /
/// the machine's available parallelism.
fn exec_policy(args: &Args) -> ExecPolicy {
    match args.threads {
        Some(0) => ExecPolicy::Serial,
        Some(n) => ExecPolicy::threads(n),
        None => ExecPolicy::Auto,
    }
}

/// Outcome flags that decide the process exit code.
#[derive(Default)]
struct RunFlags {
    /// The fault-tolerant runtime had to degrade the output (exit code 2).
    degraded: bool,
    /// The `--deadline-secs` budget expired; the output comes from the best
    /// model trained so far (exit code 3, takes precedence over 2).
    deadline_exceeded: bool,
}

/// Imputes under the chosen method, reporting the anomaly flags that decide
/// the exit code.
fn impute(args: &Args, ds: &Dataset, rng: &mut Rng64) -> Result<(Matrix, RunFlags), String> {
    let train = TrainConfig {
        epochs: args.epochs,
        ..TrainConfig::default()
    };
    match args.method.as_str() {
        "scis-gain" => {
            let mut gain = GainImputer::new(train);
            if let Some(path) = &args.load_model {
                // pre-trained generator: skip Algorithm 1, just impute
                gain.load_generator(path)
                    .map_err(|e| format!("loading model: {}", e))?;
                eprintln!("scis-impute: loaded generator from {:?}", path);
                let out =
                    scis_imputers::traits::impute_with_generator_chunked(&mut gain, ds, 65_536);
                return Ok((out, RunFlags::default()));
            }
            let n = ds.n_samples();
            let n0 = args.n0.unwrap_or_else(|| 500.min(n / 3).max(8));
            if 2 * n0 > n {
                return Err(format!("n0 = {} too large for {} rows", n0, n));
            }
            let mut config = ScisConfig::default()
                .dim(scis_core::dim::DimConfig::default().train(train))
                .epsilon(args.epsilon)
                .exec(exec_policy(args));
            if args.accel {
                config = config.accel(scis_core::dim::AccelConfig::all());
            }
            let mut scis = Scis::new(config);
            if let Some(dir) = &args.checkpoint_dir {
                scis = scis.checkpoints(CheckpointPolicy::new(dir).every(args.checkpoint_every));
            }
            if let Some(secs) = args.deadline_secs {
                scis = scis.deadline(scis_tensor::RunDeadline::after(
                    std::time::Duration::from_secs_f64(secs),
                ));
            }
            if let Some(path) = &args.resume {
                let ckpt = TrainCheckpoint::load(path)
                    .map_err(|e| format!("loading checkpoint {:?}: {}", path, e))?;
                eprintln!(
                    "scis-impute: resuming {} training from epoch {} ({:?})",
                    ckpt.phase.name(),
                    ckpt.epoch,
                    path
                );
                scis = scis.resume_from(ckpt);
            }
            let want_telemetry = args.trace_json.is_some() || args.events.is_some() || args.profile;
            let tel = if want_telemetry {
                scis_telemetry::Telemetry::collecting()
            } else {
                scis_telemetry::Telemetry::off()
            };
            if want_telemetry {
                scis = scis.telemetry(tel.clone());
            }
            let result = scis.try_run(&mut gain, ds, n0, rng);
            // the event stream is most valuable on failure: flush it before
            // surfacing any error so the JSONL doubles as a post-mortem
            if let Some(path) = &args.events {
                write_events(path, &tel)?;
            }
            let outcome = result.map_err(|e| e.to_string())?;
            if let Some(path) = &args.trace_json {
                std::fs::write(path, outcome.report.to_json())
                    .map_err(|e| format!("writing trace {:?}: {}", path, e))?;
                eprintln!("scis-impute: wrote run report to {:?}", path);
            }
            if args.profile {
                eprint!("{}", outcome.report.render_profile());
            }
            eprintln!(
                "scis-impute: trained on n* = {} of {} rows (R_t = {:.2}%), SSE {:.2}s",
                outcome.n_star,
                outcome.n_total,
                outcome.training_sample_rate() * 100.0,
                outcome.sse_time.as_secs_f64()
            );
            report_anomalies(&outcome.anomalies);
            if outcome.anomalies.deadline_exceeded {
                eprintln!(
                    "scis-impute: run deadline expired; output comes from the best model so far"
                );
            }
            if let Some(path) = &args.save_model {
                if outcome.anomalies.mean_fallback {
                    eprintln!(
                        "scis-impute: not saving a model — training fell back to mean imputation"
                    );
                } else {
                    gain.save_generator(path)
                        .map_err(|e| format!("saving model: {}", e))?;
                    eprintln!("scis-impute: saved generator to {:?}", path);
                }
            }
            let flags = RunFlags {
                degraded: outcome.anomalies.is_degraded(),
                deadline_exceeded: outcome.anomalies.deadline_exceeded,
            };
            Ok((outcome.imputed, flags))
        }
        "gain" => Ok((GainImputer::new(train).impute(ds, rng), RunFlags::default())),
        "ginn" => Ok((GinnImputer::new(train).impute(ds, rng), RunFlags::default())),
        "mice" => Ok((MiceImputer::default().impute(ds, rng), RunFlags::default())),
        "missforest" => Ok((
            MissForestImputer::default().impute(ds, rng),
            RunFlags::default(),
        )),
        "knn" => Ok((KnnImputer::default().impute(ds, rng), RunFlags::default())),
        "mean" => Ok((MeanImputer.impute(ds, rng), RunFlags::default())),
        "vae" => Ok((
            VaeImputer {
                config: train,
                ..Default::default()
            }
            .impute(ds, rng),
            RunFlags::default(),
        )),
        other => Err(format!(
            "unknown method {:?} (try scis-gain, gain, ginn, mice, missforest, knn, mean, vae)",
            other
        )),
    }
}

fn run() -> Result<RunFlags, String> {
    let args = parse_args().map_err(|e| {
        format!("{}\nusage: scis-impute INPUT.csv OUTPUT.csv [--method m] [--epsilon e] [--n0 n] [--epochs k] [--threads t] [--seed s] [--accel] [--trace-json path] [--events path] [--profile] [--checkpoint-dir dir] [--checkpoint-every n] [--resume path] [--deadline-secs s]", e)
    })?;
    let mut ds =
        read_dataset(&args.input).map_err(|e| format!("reading {:?}: {}", args.input, e))?;
    // reject unusable inputs before any training; degenerate (but usable)
    // columns are only warned about here and recorded as anomalies later
    let report = ds
        .validate()
        .map_err(|e| format!("validating {:?}: {}", args.input, e))?;
    if !report.all_missing_columns.is_empty() {
        eprintln!(
            "scis-impute: warning: columns with no observed cells: {:?}",
            report.all_missing_columns
        );
    }
    // detect ordinal-coded categorical columns so methods with
    // heterogeneous heads treat them properly
    ds.kinds = scis_data::dataset::infer_kinds(&ds.values, 16);
    eprintln!(
        "scis-impute: {} rows x {} cols, {:.2}% missing, method {}",
        ds.n_samples(),
        ds.n_features(),
        ds.missing_rate() * 100.0,
        args.method
    );
    if ds.missing_rate() == 0.0 {
        eprintln!("scis-impute: nothing to do (no missing cells); copying through");
    }
    let (norm, scaler) = MinMaxScaler::fit_transform_dataset(&ds);
    let mut rng = Rng64::seed_from_u64(args.seed);
    let (imputed_norm, flags) = impute(&args, &norm, &mut rng)?;
    let imputed = scaler.inverse_transform(&imputed_norm);
    let out_ds = Dataset::from_values(imputed);
    write_dataset(&args.output, &out_ds)
        .map_err(|e| format!("writing {:?}: {}", args.output, e))?;
    eprintln!("scis-impute: wrote {:?}", args.output);
    if flags.degraded {
        eprintln!("scis-impute: run completed in DEGRADED mode (see recovery notes above)");
    }
    if flags.deadline_exceeded {
        eprintln!("scis-impute: run completed under an EXPIRED deadline (exit code 3)");
    }
    Ok(flags)
}

fn main() -> ExitCode {
    match run() {
        Ok(flags) if flags.deadline_exceeded => ExitCode::from(3),
        Ok(flags) if flags.degraded => ExitCode::from(2),
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e);
            ExitCode::FAILURE
        }
    }
}
