//! The stable, documented library surface.
//!
//! Everything a downstream program needs for the two supported workflows
//! is re-exported here, and this module — not the individual crates — is
//! the compatibility contract:
//!
//! **Train and impute in-process** (the paper's Algorithm 1):
//!
//! ```
//! use scis_repro::api::{ExecPolicy, Scis, ScisConfig};
//!
//! let config = ScisConfig::default().epsilon(0.01).exec(ExecPolicy::Serial);
//! let scis = Scis::new(config);
//! assert_eq!(scis.config().sse.epsilon, 0.01);
//! // then: scis.try_run(&mut GainImputer::new(...), &dataset, n0, &mut rng)
//! ```
//!
//! **Serve a trained model** (train-once/apply-many):
//!
//! ```no_run
//! use scis_repro::api::{ExecPolicy, ImputeService, ModelBundle, Telemetry};
//!
//! let bundle = ModelBundle::load(std::path::Path::new("model.bundle")).unwrap();
//! let mut svc = ImputeService::new(bundle, ExecPolicy::Auto, Telemetry::off());
//! let filled = svc.impute_rows(&[vec![Some(1.0), None, Some(3.0)]]);
//! assert_eq!(filled.rows[0][0], 1.0); // observed cells pass through bit-exactly
//! ```
//!
//! Fallible entry points ([`Scis::try_run`], [`ModelBundle::load`]) return
//! typed errors ([`ScisError`], [`BundleError`]); the panicking `Scis::run`
//! wrapper is deprecated and slated for removal.

pub use scis_core::dim::{AccelConfig, DimConfig};
pub use scis_core::error::{ScisError, TrainingError};
pub use scis_core::pipeline::{RunAnomalies, Scis, ScisConfig, ScisOutcome};
pub use scis_core::report::RunReport;
pub use scis_core::{CheckpointPolicy, TrainCheckpoint};
pub use scis_data::{Dataset, MaskMatrix};
pub use scis_imputers::{GainImputer, Imputer, TrainConfig};
pub use scis_serve::batcher::{BatchConfig, Batcher, SubmitError};
pub use scis_serve::bundle::{BundleError, ColumnMeta, ModelBundle};
pub use scis_serve::server::{Server, ServerConfig};
pub use scis_serve::service::{ImputeResult, ImputeRow, ImputeService, ServeError};
pub use scis_telemetry::Telemetry;
pub use scis_tensor::{ExecPolicy, Matrix, Rng64};
